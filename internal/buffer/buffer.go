// Package buffer implements the generic buffer component of the
// refined VXD architecture (Section 4, Fig. 7/8): it sits between a
// lazy mediator (which speaks fine-grained DOM-VXD navigations) and an
// LXP wrapper (which ships coarse XML fragments), reconciling the two
// granularities.
//
// The buffer maintains an *open tree* — a partial copy of the source
// view containing hole nodes for unexplored parts. Navigation commands
// are answered from the buffered tree when possible; when a navigation
// "hits a hole", the buffer issues a fill request and splices the
// returned fragment (which may itself contain holes at arbitrary
// positions, under the liberal protocol) in place of the hole, then
// retries — the recursive d(p)/chase_first(p) algorithm of Fig. 8.
//
// The buffer implements nav.Document, so mediators cannot tell a
// buffered remote source from a local tree. It is safe for concurrent
// use, which enables the asynchronous prefetching strategy Section 4
// proposes: StartPrefetch launches a background worker that fills
// pending holes while the client navigates ("push from below" decoupled
// from "pull from above").
package buffer

import (
	"fmt"
	"sync"

	"mix/internal/lxp"
	"mix/internal/nav"
	"mix/internal/xmltree"
)

// node is one node of the buffered open tree. Children are spliced in
// place as fills arrive, so node pointers handed out as nav.IDs stay
// valid forever.
type node struct {
	label    string
	children []*node
	parent   *node
	hole     bool
	holeID   string
	inFlight bool // a fill for this hole is on the wire
}

// Buffer is an open-tree cache over one LXP session.
//
// Locking discipline: mu guards the tree and the pending list; it is
// *released* while a fill request is on the wire (the hole is marked
// inFlight so no second fill is issued for it), and re-acquired to
// splice. Demanders of an in-flight hole wait on cond.
type Buffer struct {
	srv lxp.Server
	uri string

	mu            sync.Mutex
	cond          *sync.Cond
	root          *node
	pending       []*node // unfilled holes, in discovery order
	fills         int
	prefetchFills int
	roundTrips    int // wire round trips (a batched fill is one trip)
	batchedFills  int // holes filled as part of a multi-hole round trip
	stopped       bool
	dirty         bool   // a splice happened since the last Publish
	slab          []node // current allocation slab for graft (see newNode)

	prefetchErrs    int   // prefetch fills that failed
	lastPrefetchErr error // most recent prefetch failure (nil if none)

	// Prefetch, when > 0, makes every demand-driven fill also fill up
	// to Prefetch additional pending holes synchronously. For the
	// asynchronous strategy use StartPrefetch instead.
	Prefetch int

	// Batch, when > 1, coalesces up to this many holes into one
	// fill_many round trip (lxp.FillMany): the chase_first demand path
	// batches sibling holes of the hole it must fill anyway, and the
	// prefetchers batch across the whole pending list. 0 or 1 keeps the
	// one-hole-per-round-trip behavior (and the plain fill message), so
	// the default changes nothing on the wire.
	Batch int

	// Publish, when non-nil, observes the open tree after every splice
	// (demand or prefetch): it receives a fresh snapshot with holes for
	// the unexplored parts. Mediators wire it to a region-cache entry so
	// fills — prefetch fills in particular — become visible to other
	// sessions. Set it before serving navigations; it is called without
	// the buffer lock held.
	Publish func(*xmltree.Tree)

	wg sync.WaitGroup
}

// New opens an LXP session for uri and returns a buffer over it. Only
// the get_root message is exchanged; no data is transferred.
func New(srv lxp.Server, uri string) (*Buffer, error) {
	id, err := srv.GetRoot(uri)
	if err != nil {
		return nil, err
	}
	b := &Buffer{srv: srv, uri: uri}
	b.cond = sync.NewCond(&b.mu)
	b.root = &node{hole: true, holeID: id}
	return b, nil
}

// Fills returns the number of fill requests issued so far (including
// prefetch fills).
func (b *Buffer) Fills() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fills
}

// DemandFills returns the fills issued on the client's navigation path
// (total minus prefetch fills) — the latency the client actually waits
// for.
func (b *Buffer) DemandFills() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fills - b.prefetchFills
}

// PendingHoles returns the number of known unexplored holes.
func (b *Buffer) PendingHoles() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.pending)
	if b.root.hole {
		n++
	}
	return n
}

// RoundTrips returns the number of wire round trips issued so far; with
// batching enabled it can be much smaller than Fills.
func (b *Buffer) RoundTrips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.roundTrips
}

// LastPrefetchError returns the most recent prefetch failure, nil if
// prefetching has never failed. Prefetching is best-effort — a failure
// never surfaces on the demand path unless the demand path hits it too
// — so this is how operators find out prefetch has been dying.
func (b *Buffer) LastPrefetchError() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastPrefetchErr
}

// Stats is a snapshot of the buffer's fill accounting.
type Stats struct {
	Fills             int    // fill requests issued (holes filled)
	DemandFills       int    // fills the client's navigation waited for
	PrefetchFills     int    // fills issued by the prefetchers
	RoundTrips        int    // wire round trips (batched fills share one)
	BatchedFills      int    // holes filled via multi-hole round trips
	PendingHoles      int    // known unexplored holes
	PrefetchErrors    int    // prefetch fills that failed
	LastPrefetchError string // most recent prefetch failure ("" if none)
}

// Stats returns a consistent snapshot of the buffer's accounting.
func (b *Buffer) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := Stats{
		Fills:          b.fills,
		DemandFills:    b.fills - b.prefetchFills,
		PrefetchFills:  b.prefetchFills,
		RoundTrips:     b.roundTrips,
		BatchedFills:   b.batchedFills,
		PendingHoles:   len(b.pending),
		PrefetchErrors: b.prefetchErrs,
	}
	if b.root.hole {
		s.PendingHoles++
	}
	if b.lastPrefetchErr != nil {
		s.LastPrefetchError = b.lastPrefetchErr.Error()
	}
	return s
}

// Root implements nav.Document. Resolving the root may require filling
// the root hole (the paper's get_root only returns a handle).
func (b *Buffer) Root() (nav.ID, error) {
	defer b.maybePublish()
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.root.hole {
		if b.root.inFlight {
			b.cond.Wait()
			continue
		}
		trees, err := b.fillLocked(b.root)
		if err != nil {
			return nil, err
		}
		if b.root.hole { // still ours to resolve
			if len(trees) != 1 || trees[0].IsHole() {
				return nil, &lxp.ProtocolError{HoleID: b.root.holeID,
					Msg: fmt.Sprintf("root fill must return one element, got %d trees", len(trees))}
			}
			b.root = b.graft(trees[0], nil)
			b.dirty = true
			b.cond.Broadcast()
		}
	}
	return b.root, nil
}

// nodeChunk sizes the slabs newNode carves buffer nodes from. Slabs
// are replaced, never regrown, so issued *node IDs stay valid.
const nodeChunk = 64

// newNode carves one zeroed node from the current slab. Caller holds
// mu (or, during New, has exclusive access).
func (b *Buffer) newNode() *node {
	if len(b.slab) == cap(b.slab) {
		b.slab = make([]node, 0, nodeChunk)
	}
	b.slab = b.slab[:len(b.slab)+1]
	return &b.slab[len(b.slab)-1]
}

// graft converts a fill fragment into buffer nodes. Caller holds mu.
func (b *Buffer) graft(t *xmltree.Tree, parent *node) *node {
	n := b.newNode()
	n.parent = parent
	if t.IsHole() {
		n.hole, n.holeID = true, t.HoleID()
		b.pending = append(b.pending, n)
		return n
	}
	n.label = t.Label
	if len(t.Children) > 0 {
		n.children = make([]*node, len(t.Children))
		for i, c := range t.Children {
			n.children[i] = b.graft(c, n)
		}
	}
	return n
}

// fillLocked issues the fill for h with mu released during the wire
// round-trip; h is flagged inFlight so no concurrent duplicate fill is
// sent. On return mu is held again and h.inFlight is cleared. The
// caller is responsible for splicing.
func (b *Buffer) fillLocked(h *node) ([]*xmltree.Tree, error) {
	h.inFlight = true
	b.fills++
	b.roundTrips++
	b.mu.Unlock()
	trees, err := b.srv.Fill(h.holeID)
	if err == nil {
		err = lxp.ValidateFill(h.holeID, trees)
	}
	b.mu.Lock()
	h.inFlight = false
	if err != nil {
		b.cond.Broadcast()
		return nil, err
	}
	return trees, nil
}

// fillManyLocked issues one batched fill for holes with mu released
// during the wire round trip; every hole is flagged inFlight. The
// progress rules are enforced per hole, exactly as for single fills.
// The caller is responsible for splicing.
func (b *Buffer) fillManyLocked(holes []*node) (map[string][]*xmltree.Tree, error) {
	ids := make([]string, len(holes))
	for i, h := range holes {
		h.inFlight = true
		ids[i] = h.holeID
	}
	b.fills += len(holes)
	b.batchedFills += len(holes)
	b.roundTrips++
	b.mu.Unlock()
	res, err := lxp.FillMany(b.srv, ids)
	if err == nil {
		for _, id := range ids {
			if err = lxp.ValidateFill(id, res[id]); err != nil {
				break
			}
		}
	}
	b.mu.Lock()
	for _, h := range holes {
		h.inFlight = false
	}
	if err != nil {
		b.cond.Broadcast()
		return nil, err
	}
	return res, nil
}

// expand fills the hole child h of parent p and splices the result in
// its place; with batching enabled, other hole children of p ride the
// same round trip (the chase_first frontier is where sibling holes
// accumulate). Caller holds mu. If another goroutine is already filling
// h, expand waits for it instead.
func (b *Buffer) expand(p *node, h *node) error {
	if h.inFlight {
		for h.inFlight {
			b.cond.Wait()
		}
		return nil // resolved (or failed) by the other goroutine; caller re-inspects
	}
	if !h.hole {
		return nil // already resolved
	}
	group := []*node{h}
	if b.Batch > 1 {
		for _, c := range p.children {
			if len(group) >= b.Batch {
				break
			}
			if c != h && c.hole && !c.inFlight {
				group = append(group, c)
			}
		}
	}
	return b.expandGroup(group)
}

// expandGroup fills a set of non-in-flight holes — possibly under
// different parents — in one round trip and splices each result in
// place. Caller holds mu.
func (b *Buffer) expandGroup(group []*node) error {
	var fills map[string][]*xmltree.Tree
	if len(group) == 1 {
		// Single hole: use the plain fill message, so unbatched buffers
		// are wire-identical to the pre-batching protocol.
		trees, err := b.fillLocked(group[0])
		if err != nil {
			return err
		}
		fills = map[string][]*xmltree.Tree{group[0].holeID: trees}
	} else {
		var err error
		if fills, err = b.fillManyLocked(group); err != nil {
			return err
		}
	}
	var firstErr error
	for _, h := range group {
		if !h.hole {
			continue // lost a race; result discarded
		}
		if err := b.splice(h, fills[h.holeID]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	b.cond.Broadcast()
	if firstErr != nil {
		return firstErr
	}
	b.syncPrefetch()
	return nil
}

// splice replaces the resolved hole h with the trees its fill returned.
// Caller holds mu.
func (b *Buffer) splice(h *node, trees []*xmltree.Tree) error {
	p := h.parent
	if p == nil {
		return fmt.Errorf("buffer: internal error: splice on the root hole")
	}
	idx := -1
	for i, c := range p.children {
		if c == h {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("buffer: internal error: hole not under its parent")
	}
	repl := make([]*node, 0, len(trees))
	for _, t := range trees {
		repl = append(repl, b.graft(t, p))
	}
	nc := make([]*node, 0, len(p.children)-1+len(repl))
	nc = append(nc, p.children[:idx]...)
	nc = append(nc, repl...)
	nc = append(nc, p.children[idx+1:]...)
	p.children = nc
	h.hole = false // mark resolved for waiters holding the old pointer
	b.removePending(h)
	b.dirty = true
	return b.checkNoAdjacentHoles(p)
}

// maybePublish snapshots and publishes the open tree if it changed
// since the last publish. Caller must NOT hold mu; the Publish callback
// itself runs without the lock, so it may navigate the buffer.
func (b *Buffer) maybePublish() {
	b.mu.Lock()
	fn := b.Publish
	if fn == nil || !b.dirty {
		b.mu.Unlock()
		return
	}
	b.dirty = false
	t := snap(b.root)
	b.mu.Unlock()
	fn(t)
}

func (b *Buffer) removePending(h *node) {
	for i, n := range b.pending {
		if n == h {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			return
		}
	}
}

// checkNoAdjacentHoles enforces the invariant after splicing: a liberal
// wrapper may place holes anywhere in a fill, but a splice must never
// create two adjacent holes in the buffered tree.
func (b *Buffer) checkNoAdjacentHoles(p *node) error {
	for i := 1; i < len(p.children); i++ {
		if p.children[i].hole && p.children[i-1].hole {
			return &lxp.ProtocolError{HoleID: p.children[i].holeID,
				Msg: "splice produced adjacent holes"}
		}
	}
	return nil
}

// syncPrefetch fills up to b.Prefetch pending holes synchronously
// (most recently discovered first; each may coalesce siblings when
// batching is on). Caller holds mu. Prefetching is best-effort: a
// failure stops this round but is recorded (see Stats) rather than
// surfaced, since the demand path will rediscover a real error.
func (b *Buffer) syncPrefetch() {
	for i := 0; i < b.Prefetch && len(b.pending) > 0; i++ {
		h := b.pending[len(b.pending)-1]
		if h.parent == nil || h.inFlight {
			return
		}
		if err := b.expand(h.parent, h); err != nil {
			b.notePrefetchErr(err)
			return
		}
	}
}

// notePrefetchErr records a best-effort prefetch failure. Caller holds mu.
func (b *Buffer) notePrefetchErr(err error) {
	b.prefetchErrs++
	b.lastPrefetchErr = err
}

// StartPrefetch launches the asynchronous prefetcher: a background
// goroutine that keeps filling pending holes (oldest first, batched
// across parents up to Batch per round trip) while the client
// navigates. Stop it with StopPrefetch; fills already on the wire
// complete. Prefetch errors stop the prefetcher and are recorded (see
// Stats/LastPrefetchError) — the demand path will rediscover a real
// error.
func (b *Buffer) StartPrefetch() {
	b.mu.Lock()
	b.stopped = false
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.mu.Lock()
		defer b.mu.Unlock()
		for {
			if b.stopped {
				return
			}
			maxBatch := b.Batch
			if maxBatch < 1 {
				maxBatch = 1
			}
			var group []*node
			for _, cand := range b.pending {
				if !cand.inFlight && cand.parent != nil {
					group = append(group, cand)
					if len(group) >= maxBatch {
						break
					}
				}
			}
			if len(group) == 0 {
				if len(b.pending) == 0 && !b.root.hole {
					return // fully explored: nothing left to prefetch
				}
				b.cond.Wait()
				continue
			}
			before := b.fills
			if err := b.expandGroup(group); err != nil {
				b.notePrefetchErr(err)
				return
			}
			b.prefetchFills += b.fills - before
			if fn := b.Publish; fn != nil && b.dirty {
				b.dirty = false
				t := snap(b.root)
				b.mu.Unlock()
				fn(t)
				b.mu.Lock()
			}
		}
	}()
}

// StopPrefetch stops the asynchronous prefetcher and waits for it.
func (b *Buffer) StopPrefetch() {
	b.mu.Lock()
	b.stopped = true
	b.cond.Broadcast()
	b.mu.Unlock()
	b.wg.Wait()
}

func (b *Buffer) id(p nav.ID) (*node, error) {
	n, ok := p.(*node)
	if !ok || n == nil {
		return nil, fmt.Errorf("%w: %T", nav.ErrForeignID, p)
	}
	return n, nil
}

// Down implements nav.Document — the d(p) algorithm of Fig. 8.
func (b *Buffer) Down(p nav.ID) (nav.ID, error) {
	n, err := b.id(p)
	if err != nil {
		return nil, err
	}
	defer b.maybePublish()
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if len(n.children) == 0 {
			return nil, nil // genuine leaf: done
		}
		first := n.children[0]
		if !first.hole {
			return first, nil // regular child: done
		}
		// chase_first: fill the hole; the splice may reveal a real
		// first child, another (nested) hole, or an empty list.
		if err := b.expand(n, first); err != nil {
			return nil, err
		}
	}
}

// Right implements nav.Document — the r(p) variant of Fig. 8
// (first_child/right_neighbor swapped).
func (b *Buffer) Right(p nav.ID) (nav.ID, error) {
	n, err := b.id(p)
	if err != nil {
		return nil, err
	}
	defer b.maybePublish()
	b.mu.Lock()
	defer b.mu.Unlock()
	if n.parent == nil {
		return nil, nil
	}
	for {
		sibs := n.parent.children
		idx := -1
		for i, c := range sibs {
			if c == n {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("buffer: internal error: node detached from parent")
		}
		if idx+1 >= len(sibs) {
			return nil, nil // no right sibling: done
		}
		next := sibs[idx+1]
		if !next.hole {
			return next, nil
		}
		if err := b.expand(n.parent, next); err != nil {
			return nil, err
		}
	}
}

// Fetch implements nav.Document; labels are always local (holes are
// never exposed as nodes).
func (b *Buffer) Fetch(p nav.ID) (string, error) {
	n, err := b.id(p)
	if err != nil {
		return "", err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if n.hole {
		return "", fmt.Errorf("buffer: internal error: fetch on hole")
	}
	return n.label, nil
}

// Snapshot returns a copy of the current open tree (holes included) for
// inspection: the explored part of the source view.
func (b *Buffer) Snapshot() *xmltree.Tree {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.root == nil {
		return nil
	}
	return snap(b.root)
}

func snap(n *node) *xmltree.Tree {
	if n.hole {
		return xmltree.Hole(n.holeID)
	}
	t := &xmltree.Tree{Label: n.label}
	for _, c := range n.children {
		t.Children = append(t.Children, snap(c))
	}
	return t
}
