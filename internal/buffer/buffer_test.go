package buffer

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mix/internal/lxp"
	"mix/internal/nav"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

func doc() *xmltree.Tree {
	return xmltree.Elem("catalog",
		xmltree.Elem("book", xmltree.Text("title", "t1"), xmltree.Text("price", "10")),
		xmltree.Elem("book", xmltree.Text("title", "t2"), xmltree.Text("price", "20")),
		xmltree.Elem("book", xmltree.Text("title", "t3"), xmltree.Text("price", "30")),
		xmltree.Elem("book", xmltree.Text("title", "t4"), xmltree.Text("price", "40")),
	)
}

func TestBufferTransparency(t *testing.T) {
	// A buffered chunked source is observationally identical to the
	// plain tree, for all chunkings.
	d := doc()
	for _, chunk := range []int{1, 2, 3, 100} {
		for _, inline := range []int{0, 1, 2, 5, 100} {
			b, err := New(&lxp.TreeServer{Tree: d, Chunk: chunk, InlineLimit: inline}, "u")
			if err != nil {
				t.Fatal(err)
			}
			got, err := nav.Materialize(b)
			if err != nil {
				t.Fatalf("chunk=%d inline=%d: %v", chunk, inline, err)
			}
			if !xmltree.Equal(got, d) {
				t.Fatalf("chunk=%d inline=%d: %v", chunk, inline, got)
			}
		}
	}
}

func TestBufferLazyFills(t *testing.T) {
	d := doc()
	cs := lxp.NewCounting(&lxp.TreeServer{Tree: d, Chunk: 1, InlineLimit: 1})
	b, err := New(cs, "u")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Counters.Fills.Load() != 0 {
		t.Fatal("opening the buffer must not fill")
	}
	root, err := b.Root()
	if err != nil {
		t.Fatal(err)
	}
	afterRoot := cs.Counters.Fills.Load()
	if afterRoot == 0 {
		t.Fatal("resolving the root requires one fill")
	}
	// Navigating to the first book touches one more chunk, not all.
	first, err := b.Down(root)
	if err != nil || first == nil {
		t.Fatalf("Down: %v %v", first, err)
	}
	partial := cs.Counters.Fills.Load()
	if _, err := nav.Materialize(b); err != nil {
		t.Fatal(err)
	}
	full := cs.Counters.Fills.Load()
	if partial >= full {
		t.Fatalf("full exploration (%d fills) should exceed partial (%d)", full, partial)
	}
}

func TestBufferRepeatNavigationFillsOnce(t *testing.T) {
	d := doc()
	cs := lxp.NewCounting(&lxp.TreeServer{Tree: d, Chunk: 2, InlineLimit: 2})
	b, err := New(cs, "u")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nav.Materialize(b); err != nil {
		t.Fatal(err)
	}
	n := cs.Counters.Fills.Load()
	if _, err := nav.Materialize(b); err != nil {
		t.Fatal(err)
	}
	if cs.Counters.Fills.Load() != n {
		t.Fatal("re-navigation must be served from the buffer")
	}
	if b.Fills() != int(n) {
		t.Fatalf("Buffer.Fills = %d, counter = %d", b.Fills(), n)
	}
}

func TestBufferSnapshotShowsHoles(t *testing.T) {
	b, err := New(&lxp.TreeServer{Tree: doc(), Chunk: 1, InlineLimit: 1}, "u")
	if err != nil {
		t.Fatal(err)
	}
	root, err := b.Root()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Down(root); err != nil {
		t.Fatal(err)
	}
	snap := b.Snapshot()
	if !snap.IsOpen() {
		t.Fatalf("partially explored buffer should have holes: %v", snap)
	}
	if _, err := nav.Materialize(b); err != nil {
		t.Fatal(err)
	}
	if b.Snapshot().IsOpen() {
		t.Fatalf("fully explored buffer should be closed: %v", b.Snapshot())
	}
}

// liberalServer serves a fixed tree but answers fills in a maximally
// liberal way: children are revealed in a random order, one real
// element per fill, with holes for both the left and right remainders.
type liberalServer struct {
	tree  *xmltree.Tree
	r     *rand.Rand
	holes map[string][]*xmltree.Tree // hole id → the sublist it represents
	next  int
}

func newLiberalServer(t *xmltree.Tree, seed int64) *liberalServer {
	return &liberalServer{tree: t, r: rand.New(rand.NewSource(seed)),
		holes: map[string][]*xmltree.Tree{}}
}

func (s *liberalServer) GetRoot(string) (string, error) {
	id := s.fresh([]*xmltree.Tree{s.tree})
	return id, nil
}

func (s *liberalServer) fresh(sublist []*xmltree.Tree) string {
	s.next++
	id := fmt.Sprintf("h%d", s.next)
	s.holes[id] = sublist
	return id
}

// Fill reveals one element of the hole's sublist, chosen at random,
// leaving holes on both sides; the revealed element's children are a
// single fresh hole (unless it is a leaf).
func (s *liberalServer) Fill(id string) ([]*xmltree.Tree, error) {
	sub, ok := s.holes[id]
	if !ok {
		return nil, fmt.Errorf("stale hole %q", id)
	}
	delete(s.holes, id)
	if len(sub) == 0 {
		return nil, nil
	}
	pick := s.r.Intn(len(sub))
	chosen := sub[pick]
	rendered := &xmltree.Tree{Label: chosen.Label}
	if len(chosen.Children) > 0 {
		rendered.Children = []*xmltree.Tree{xmltree.Hole(s.fresh(chosen.Children))}
	}
	var out []*xmltree.Tree
	if pick > 0 {
		out = append(out, xmltree.Hole(s.fresh(sub[:pick])))
	}
	out = append(out, rendered)
	if pick+1 < len(sub) {
		out = append(out, xmltree.Hole(s.fresh(sub[pick+1:])))
	}
	return out, nil
}

func TestBufferLiberalProtocol(t *testing.T) {
	d := doc()
	for seed := int64(0); seed < 20; seed++ {
		b, err := New(newLiberalServer(d, seed), "u")
		if err != nil {
			t.Fatal(err)
		}
		got, err := nav.Materialize(b)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !xmltree.Equal(got, d) {
			t.Fatalf("seed %d: liberal buffer differs:\n%v\nvs\n%v", seed, got, d)
		}
	}
}

func TestQuickBufferLiberalEqualsTree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTree(r, 4)
		if tr.IsLeaf() {
			tr = xmltree.Elem("root", tr)
		}
		b, err := New(newLiberalServer(tr, seed+1), "u")
		if err != nil {
			return false
		}
		got, err := nav.Materialize(b)
		return err == nil && xmltree.Equal(got, tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randomTree(r *rand.Rand, depth int) *xmltree.Tree {
	labels := []string{"a", "b", "c"}
	t := &xmltree.Tree{Label: labels[r.Intn(len(labels))]}
	if depth <= 0 {
		return t
	}
	for i, n := 0, r.Intn(4); i < n; i++ {
		t.Children = append(t.Children, randomTree(r, depth-1))
	}
	return t
}

// violatingServer breaks the protocol in configurable ways.
type violatingServer struct{ mode string }

func (v *violatingServer) GetRoot(string) (string, error) { return "root", nil }

func (v *violatingServer) Fill(id string) ([]*xmltree.Tree, error) {
	switch v.mode {
	case "adjacent":
		if id == "root" {
			return []*xmltree.Tree{xmltree.Elem("r", xmltree.Hole("a"), xmltree.Hole("b"))}, nil
		}
		return []*xmltree.Tree{xmltree.Leaf("x")}, nil
	case "allholes":
		if id == "root" {
			return []*xmltree.Tree{xmltree.Elem("r", xmltree.Hole("a"))}, nil
		}
		return []*xmltree.Tree{xmltree.Hole("c"), xmltree.Hole("d")}, nil
	case "error":
		return nil, fmt.Errorf("wrapper exploded")
	default:
		return nil, nil
	}
}

func TestBufferRejectsProtocolViolations(t *testing.T) {
	for _, mode := range []string{"adjacent", "allholes", "error"} {
		b, err := New(&violatingServer{mode: mode}, "u")
		if err != nil {
			t.Fatal(err)
		}
		_, err = nav.Materialize(b)
		if err == nil {
			t.Errorf("mode %q: expected failure", mode)
		}
	}
}

func TestBufferForeignID(t *testing.T) {
	b, err := New(&lxp.TreeServer{Tree: doc()}, "u")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Down("bogus"); err == nil {
		t.Fatal("foreign id should error")
	}
	if _, err := b.Fetch(nil); err == nil {
		t.Fatal("nil id should error")
	}
}

func TestBufferPrefetch(t *testing.T) {
	d := doc()
	cs := lxp.NewCounting(&lxp.TreeServer{Tree: d, Chunk: 1, InlineLimit: 1})
	b, err := New(cs, "u")
	if err != nil {
		t.Fatal(err)
	}
	b.Prefetch = 2
	got, err := nav.Materialize(b)
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(got, d) {
		t.Fatal("prefetching buffer changes semantics")
	}
}

func TestBufferRightAtRoot(t *testing.T) {
	b, err := New(&lxp.TreeServer{Tree: doc()}, "u")
	if err != nil {
		t.Fatal(err)
	}
	root, err := b.Root()
	if err != nil {
		t.Fatal(err)
	}
	r, err := b.Right(root)
	if err != nil || r != nil {
		t.Fatalf("root has no siblings: %v %v", r, err)
	}
}

// slowServer delays each fill slightly so prefetching and demand
// genuinely interleave.
type slowServer struct {
	inner lxp.Server
}

func (s slowServer) GetRoot(uri string) (string, error) { return s.inner.GetRoot(uri) }
func (s slowServer) Fill(id string) ([]*xmltree.Tree, error) {
	time.Sleep(200 * time.Microsecond)
	return s.inner.Fill(id)
}

func TestAsyncPrefetchFillsEverything(t *testing.T) {
	d := doc()
	cs := lxp.NewCounting(&lxp.TreeServer{Tree: d, Chunk: 1, InlineLimit: 1})
	b, err := New(cs, "u")
	if err != nil {
		t.Fatal(err)
	}
	// The client resolves the root; the prefetcher does the rest.
	if _, err := b.Root(); err != nil {
		t.Fatal(err)
	}
	b.StartPrefetch()
	deadline := time.Now().Add(5 * time.Second)
	for b.PendingHoles() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("prefetcher stalled with %d holes:\n%v", b.PendingHoles(), b.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	b.StopPrefetch()
	if b.Snapshot().IsOpen() {
		t.Fatal("open tree after complete prefetch")
	}
	// Navigation is now free of fills.
	before := cs.Counters.Fills.Load()
	got, err := nav.Materialize(b)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Counters.Fills.Load() != before {
		t.Fatal("navigation after full prefetch should not fill")
	}
	if !xmltree.Equal(got, d) {
		t.Fatal("prefetched document differs")
	}
}

func TestAsyncPrefetchConcurrentWithNavigation(t *testing.T) {
	d := workload.Books("az", 150, 9)
	b, err := New(slowServer{inner: &lxp.TreeServer{Tree: d, Chunk: 3, InlineLimit: 16}}, "u")
	if err != nil {
		t.Fatal(err)
	}
	b.StartPrefetch()
	defer b.StopPrefetch()
	got, err := nav.Materialize(b)
	if err != nil {
		t.Fatalf("navigation racing prefetch: %v", err)
	}
	if !xmltree.Equal(got, d) {
		t.Fatal("document corrupted under concurrent prefetch")
	}
}

func TestConcurrentReaders(t *testing.T) {
	d := workload.Books("az", 100, 4)
	b, err := New(&lxp.TreeServer{Tree: d, Chunk: 2, InlineLimit: 8}, "u")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := nav.Materialize(b)
			if err != nil {
				errs <- err
				return
			}
			if !xmltree.Equal(got, d) {
				errs <- fmt.Errorf("reader saw a different document")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStopPrefetchIdle(t *testing.T) {
	b, err := New(&lxp.TreeServer{Tree: doc()}, "u")
	if err != nil {
		t.Fatal(err)
	}
	b.StartPrefetch()
	b.StopPrefetch() // must not hang even though the root is unresolved
	if b.PendingHoles() != 1 {
		t.Fatalf("pending = %d, want the root hole", b.PendingHoles())
	}
}
