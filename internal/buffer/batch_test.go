package buffer

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mix/internal/lxp"
	"mix/internal/nav"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// TestBatchedDemandFillsCoalesceSiblings: the liberal protocol leaves
// several sibling holes under one parent; with batching on, the
// chase_first demand path rides them on one fill_many round trip.
// Materialization must stay identical for every seed.
func TestBatchedDemandFillsCoalesceSiblings(t *testing.T) {
	d := doc()
	var coalesced bool
	for seed := int64(0); seed < 20; seed++ {
		b, err := New(newLiberalServer(d, seed), "u")
		if err != nil {
			t.Fatal(err)
		}
		b.Batch = 4
		got, err := nav.Materialize(b)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !xmltree.Equal(got, d) {
			t.Fatalf("seed %d: batched buffer differs:\n%v\nvs\n%v", seed, got, d)
		}
		st := b.Stats()
		if st.RoundTrips > st.Fills {
			t.Fatalf("seed %d: %d round trips for %d fills", seed, st.RoundTrips, st.Fills)
		}
		if st.BatchedFills > 0 {
			coalesced = true
			if st.RoundTrips >= st.Fills {
				t.Fatalf("seed %d: batching fired but saved no round trip: %+v", seed, st)
			}
		}
	}
	if !coalesced {
		t.Fatal("no seed exercised sibling-hole coalescing")
	}
}

// TestBatchOneIsWireIdentical: Batch=1 (and 0) keeps the plain
// one-hole-per-round-trip fill protocol: round trips == fills, and no
// fill is accounted as batched.
func TestBatchOneIsWireIdentical(t *testing.T) {
	for _, batch := range []int{0, 1} {
		b, err := New(newLiberalServer(doc(), 3), "u")
		if err != nil {
			t.Fatal(err)
		}
		b.Batch = batch
		if _, err := nav.Materialize(b); err != nil {
			t.Fatal(err)
		}
		st := b.Stats()
		if st.RoundTrips != st.Fills || st.BatchedFills != 0 {
			t.Fatalf("Batch=%d changed the wire economy: %+v", batch, st)
		}
	}
}

// TestBatchedPrefetchDrain: the asynchronous prefetcher coalesces
// pending holes across parents, so a cold drain of a chunked catalog
// takes a fraction of the single-fill round trips.
func TestBatchedPrefetchDrain(t *testing.T) {
	catalog := workload.Books("az", 60, 4)
	want, err := nav.Materialize(nav.NewTreeDoc(catalog))
	if err != nil {
		t.Fatal(err)
	}
	drain := func(batch int) (Stats, *xmltree.Tree) {
		b, err := New(&lxp.TreeServer{Tree: catalog, Chunk: 5, InlineLimit: 4}, "u")
		if err != nil {
			t.Fatal(err)
		}
		b.Batch = batch
		if _, err := b.Root(); err != nil {
			t.Fatal(err)
		}
		b.StartPrefetch()
		deadline := time.Now().Add(30 * time.Second)
		for b.PendingHoles() > 0 && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		b.StopPrefetch()
		got, err := nav.Materialize(b)
		if err != nil {
			t.Fatal(err)
		}
		return b.Stats(), got
	}
	single, got1 := drain(1)
	batched, got8 := drain(8)
	if !xmltree.Equal(got1, want) || !xmltree.Equal(got8, want) {
		t.Fatal("prefetch drain changed the document")
	}
	if single.Fills != batched.Fills {
		t.Fatalf("batching changed the fill count: %d vs %d", single.Fills, batched.Fills)
	}
	if 2*batched.RoundTrips > single.RoundTrips {
		t.Fatalf("batch=8 used %d round trips vs %d unbatched; want ≥2x fewer",
			batched.RoundTrips, single.RoundTrips)
	}
	if batched.PrefetchFills == 0 || batched.BatchedFills == 0 {
		t.Fatalf("prefetcher did not batch: %+v", batched)
	}
}

// failAfterRoot serves a root whose children are holes, then fails
// every further fill.
type failAfterRoot struct {
	err   error
	holes int
}

func (s *failAfterRoot) GetRoot(string) (string, error) { return "root", nil }

func (s *failAfterRoot) Fill(id string) ([]*xmltree.Tree, error) {
	if id != "root" {
		return nil, s.err
	}
	root := xmltree.Elem("r")
	for i := 0; i < s.holes; i++ {
		root.Children = append(root.Children,
			xmltree.Elem("x", xmltree.Hole(fmt.Sprintf("sub%d", i))))
	}
	return []*xmltree.Tree{root}, nil
}

// TestPrefetchErrorRecorded: prefetch failures must not crash or hang
// the buffer, and must be observable through Stats/LastPrefetchError
// (satellite: surface the last prefetch error).
func TestPrefetchErrorRecorded(t *testing.T) {
	boom := errors.New("wrapper unreachable")
	b, err := New(&failAfterRoot{err: boom, holes: 3}, "u")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Root(); err != nil {
		t.Fatal(err)
	}
	b.StartPrefetch()
	deadline := time.Now().Add(30 * time.Second)
	for b.LastPrefetchError() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	b.StopPrefetch()
	if got := b.LastPrefetchError(); !errors.Is(got, boom) {
		t.Fatalf("LastPrefetchError = %v, want %v", got, boom)
	}
	st := b.Stats()
	if st.PrefetchErrors == 0 || st.LastPrefetchError == "" {
		t.Fatalf("stats do not surface the prefetch failure: %+v", st)
	}
	// The demand path still reports the error itself, independently.
	root, err := b.Root()
	if err != nil {
		t.Fatal(err)
	}
	first, err := b.Down(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Down(first); !errors.Is(err, boom) {
		t.Fatalf("demand path error = %v, want %v", err, boom)
	}
}

// BenchmarkFillsBatchedVsSingle drains a chunked catalog through a
// wrapper that charges a fixed latency per round trip — the economy the
// fill_many batching is for.
func BenchmarkFillsBatchedVsSingle(b *testing.B) {
	catalog := workload.Books("az", 100, 4)
	for _, bc := range []struct {
		name  string
		batch int
	}{
		{"single", 1},
		{"batch8", 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buf, err := New(&delayedTreeServer{
					TreeServer: lxp.TreeServer{Tree: catalog, Chunk: 5, InlineLimit: 4},
					delay:      50 * time.Microsecond,
				}, "u")
				if err != nil {
					b.Fatal(err)
				}
				buf.Batch = bc.batch
				if _, err := buf.Root(); err != nil {
					b.Fatal(err)
				}
				buf.StartPrefetch()
				deadline := time.Now().Add(time.Minute)
				for buf.PendingHoles() > 0 && time.Now().Before(deadline) {
					time.Sleep(20 * time.Microsecond)
				}
				buf.StopPrefetch()
				if buf.PendingHoles() != 0 {
					b.Fatal("drain did not finish")
				}
			}
		})
	}
}

// delayedTreeServer charges one fixed delay per round trip, whether it
// carries one hole or many.
type delayedTreeServer struct {
	lxp.TreeServer
	delay time.Duration
}

func (s *delayedTreeServer) Fill(id string) ([]*xmltree.Tree, error) {
	time.Sleep(s.delay)
	return s.TreeServer.Fill(id)
}

func (s *delayedTreeServer) FillMany(ids []string) (map[string][]*xmltree.Tree, error) {
	time.Sleep(s.delay)
	return s.TreeServer.FillMany(ids)
}
