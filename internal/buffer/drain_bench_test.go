package buffer

import (
	"net"
	"testing"

	"mix/internal/lxp"
	"mix/internal/nav"
	"mix/internal/workload"
)

// benchColdDrain drains a cold 150-book chunked catalog over real TCP,
// the workload of experiment E14's wire case.
func benchColdDrain(b *testing.B, lean bool) {
	lxp.SetWireOptimizations(lean)
	defer lxp.SetWireOptimizations(true)
	catalog := workload.Books("az", 150, 7)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := lxp.NewTCPServer(&lxp.TreeServer{Tree: catalog, Chunk: 10, InlineLimit: 1})
	go srv.Serve(l) //nolint:errcheck // exits with the listener
	defer l.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client, err := lxp.Dial(l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		buf, err := New(client, "u")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nav.Materialize(buf); err != nil {
			b.Fatal(err)
		}
		client.Close()
	}
}

func BenchmarkColdDrainLean(b *testing.B)   { benchColdDrain(b, true) }
func BenchmarkColdDrainLegacy(b *testing.B) { benchColdDrain(b, false) }
