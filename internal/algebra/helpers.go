package algebra

import (
	"fmt"

	"mix/internal/xmltree"
)

// Helper operators used by the XMAS-to-algebra translation and by
// view composition. All three are pure per-binding restructurings
// (bounded browsable).

// WrapList binds Out to the singleton list list[bin.Var] for each
// input binding — the unit of the concatenate fold when translating a
// CONSTRUCT template's item sequence.
type WrapList struct {
	Input Op
	Var   string
	Out   string
}

// Inputs implements Op.
func (w *WrapList) Inputs() []Op { return []Op{w.Input} }

// OutVars implements Op.
func (w *WrapList) OutVars() []string { return append(w.Input.OutVars(), w.Out) }

func (w *WrapList) opString() string { return fmt.Sprintf("wrapList[$%s → $%s]", w.Var, w.Out) }

// Const binds Out to a fixed tree for each input binding (literal
// content in CONSTRUCT templates).
type Const struct {
	Input Op
	Value *xmltree.Tree
	Out   string
}

// Inputs implements Op.
func (c *Const) Inputs() []Op { return []Op{c.Input} }

// OutVars implements Op.
func (c *Const) OutVars() []string { return append(c.Input.OutVars(), c.Out) }

func (c *Const) opString() string { return fmt.Sprintf("const[%s → $%s]", c.Value, c.Out) }

// Rename renames variable From to To in every binding (view
// composition glue).
type Rename struct {
	Input Op
	From  string
	To    string
}

// Inputs implements Op.
func (r *Rename) Inputs() []Op { return []Op{r.Input} }

// OutVars implements Op.
func (r *Rename) OutVars() []string {
	var out []string
	for _, v := range r.Input.OutVars() {
		if v == r.From {
			v = r.To
		}
		out = append(out, v)
	}
	return out
}

func (r *Rename) opString() string { return fmt.Sprintf("rename[$%s → $%s]", r.From, r.To) }
