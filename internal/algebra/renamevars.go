package algebra

import "fmt"

// RenameVars returns a copy of the plan with every variable name mapped
// through f (which must be injective on the plan's variables). It is
// used by view composition to make a view's internal variables disjoint
// from the client query's before splicing the view body into the query
// plan (the query∘view step of the preprocessing phase).
func RenameVars(p Op, f func(string) string) (Op, error) {
	switch op := p.(type) {
	case *Source:
		return &Source{URL: op.URL, Var: f(op.Var)}, nil
	case *GetDescendants:
		in, err := RenameVars(op.Input, f)
		if err != nil {
			return nil, err
		}
		return &GetDescendants{Input: in, Parent: f(op.Parent), Path: op.Path, Out: f(op.Out)}, nil
	case *Select:
		in, err := RenameVars(op.Input, f)
		if err != nil {
			return nil, err
		}
		c, err := renameCond(op.Cond, f)
		if err != nil {
			return nil, err
		}
		return &Select{Input: in, Cond: c}, nil
	case *Join:
		l, err := RenameVars(op.Left, f)
		if err != nil {
			return nil, err
		}
		r, err := RenameVars(op.Right, f)
		if err != nil {
			return nil, err
		}
		c, err := renameCond(op.Cond, f)
		if err != nil {
			return nil, err
		}
		return &Join{Left: l, Right: r, Cond: c}, nil
	case *GroupBy:
		in, err := RenameVars(op.Input, f)
		if err != nil {
			return nil, err
		}
		by := make([]string, len(op.By))
		for i, v := range op.By {
			by[i] = f(v)
		}
		return &GroupBy{Input: in, By: by, Var: f(op.Var), Out: f(op.Out)}, nil
	case *Concatenate:
		in, err := RenameVars(op.Input, f)
		if err != nil {
			return nil, err
		}
		return &Concatenate{Input: in, X: f(op.X), Y: f(op.Y), Out: f(op.Out)}, nil
	case *CreateElement:
		in, err := RenameVars(op.Input, f)
		if err != nil {
			return nil, err
		}
		label := op.Label
		if label.Var != "" {
			label = LabelSpec{Var: f(label.Var)}
		}
		return &CreateElement{Input: in, Label: label, Children: f(op.Children), Out: f(op.Out)}, nil
	case *OrderBy:
		in, err := RenameVars(op.Input, f)
		if err != nil {
			return nil, err
		}
		keys := make([]string, len(op.Keys))
		for i, v := range op.Keys {
			keys[i] = f(v)
		}
		return &OrderBy{Input: in, Keys: keys}, nil
	case *Project:
		in, err := RenameVars(op.Input, f)
		if err != nil {
			return nil, err
		}
		keep := make([]string, len(op.Keep))
		for i, v := range op.Keep {
			keep[i] = f(v)
		}
		return &Project{Input: in, Keep: keep}, nil
	case *Union:
		l, err := RenameVars(op.Left, f)
		if err != nil {
			return nil, err
		}
		r, err := RenameVars(op.Right, f)
		if err != nil {
			return nil, err
		}
		return &Union{Left: l, Right: r}, nil
	case *Difference:
		l, err := RenameVars(op.Left, f)
		if err != nil {
			return nil, err
		}
		r, err := RenameVars(op.Right, f)
		if err != nil {
			return nil, err
		}
		return &Difference{Left: l, Right: r}, nil
	case *Distinct:
		in, err := RenameVars(op.Input, f)
		if err != nil {
			return nil, err
		}
		return &Distinct{Input: in}, nil
	case *WrapList:
		in, err := RenameVars(op.Input, f)
		if err != nil {
			return nil, err
		}
		return &WrapList{Input: in, Var: f(op.Var), Out: f(op.Out)}, nil
	case *Const:
		in, err := RenameVars(op.Input, f)
		if err != nil {
			return nil, err
		}
		return &Const{Input: in, Value: op.Value, Out: f(op.Out)}, nil
	case *Rename:
		in, err := RenameVars(op.Input, f)
		if err != nil {
			return nil, err
		}
		return &Rename{Input: in, From: f(op.From), To: f(op.To)}, nil
	case *TupleDestroy:
		in, err := RenameVars(op.Input, f)
		if err != nil {
			return nil, err
		}
		return &TupleDestroy{Input: in, Var: f(op.Var)}, nil
	default:
		return nil, fmt.Errorf("algebra: RenameVars: unknown operator %T", p)
	}
}

func renameCond(c Cond, f func(string) string) (Cond, error) {
	switch c := c.(type) {
	case *Cmp:
		l, r := c.L, c.R
		if l.Var != "" {
			l = Operand{Var: f(l.Var)}
		}
		if r.Var != "" {
			r = Operand{Var: f(r.Var)}
		}
		return &Cmp{Op: c.Op, L: l, R: r}, nil
	case *And:
		l, err := renameCond(c.L, f)
		if err != nil {
			return nil, err
		}
		r, err := renameCond(c.R, f)
		if err != nil {
			return nil, err
		}
		return &And{L: l, R: r}, nil
	case *Or:
		l, err := renameCond(c.L, f)
		if err != nil {
			return nil, err
		}
		r, err := renameCond(c.R, f)
		if err != nil {
			return nil, err
		}
		return &Or{L: l, R: r}, nil
	case *Not:
		in, err := renameCond(c.C, f)
		if err != nil {
			return nil, err
		}
		return &Not{C: in}, nil
	case True:
		return c, nil
	case *LabelMatch:
		return &LabelMatch{Var: f(c.Var), Label: c.Label}, nil
	default:
		return nil, fmt.Errorf("algebra: RenameVars: unknown condition %T", c)
	}
}
