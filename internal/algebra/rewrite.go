package algebra

// Query rewriting (the preprocessing phase of Section 3): the initial
// plan obtained from query∘view composition is rewritten into one
// optimized with respect to navigational complexity. The rules here
// are classical algebraic rewrites restated for binding lists:
//
//	R1  selection pushdown through join — a condition referencing only
//	    one side's variables is evaluated below the join, so the lazy
//	    join pulls fewer bindings from the sources;
//	R2  selection pushdown through getDescendants / concatenate /
//	    createElement when the condition does not reference the newly
//	    introduced variable;
//	R3  cascade merge — select(select(x)) ⇒ select with AND, so one
//	    scan serves both conditions;
//	R4  redundant orderBy elimination — orderBy(orderBy(x, k'), k) keeps
//	    only the outer sort (the inner order is destroyed anyway), and
//	    orderBy directly above an identical orderBy collapses;
//	R5  project pruning — project of all input variables is a no-op;
//	R6  trivial selection elimination — select(true) disappears, and an
//	    AND with a true conjunct is simplified;
//	R7  distinct idempotence — distinct(distinct(x)) ⇒ distinct(x);
//	R8  project pushdown through join — a projection splits across the
//	    join inputs (keeping the join-condition variables), so fewer
//	    values are carried upward per binding.
//
// Rewrite applies the rules bottom-up until a fixed point is reached.

// Rewrite returns an equivalent plan optimized for navigational
// complexity. The input plan is not modified; unchanged subtrees are
// shared.
func Rewrite(p Op) Op {
	for {
		q, changed := rewriteOnce(p)
		if !changed {
			return q
		}
		p = q
	}
}

func rewriteOnce(p Op) (Op, bool) {
	// Rewrite inputs first (bottom-up).
	changed := false
	p = mapInputs(p, func(in Op) Op {
		q, c := rewriteOnce(in)
		changed = changed || c
		return q
	})

	switch op := p.(type) {
	case *Select:
		// R6: trivial selections disappear.
		if _, isTrue := op.Cond.(True); isTrue {
			return op.Input, true
		}
		if a, ok := op.Cond.(*And); ok {
			if _, lt := a.L.(True); lt {
				return &Select{Input: op.Input, Cond: a.R}, true
			}
			if _, rt := a.R.(True); rt {
				return &Select{Input: op.Input, Cond: a.L}, true
			}
		}
		// R3: merge cascaded selections.
		if inner, ok := op.Input.(*Select); ok {
			return &Select{Input: inner.Input, Cond: &And{L: inner.Cond, R: op.Cond}}, true
		}
		// R1: push through join.
		if j, ok := op.Input.(*Join); ok {
			lv := varSet(j.Left.OutVars())
			rv := varSet(j.Right.OutVars())
			if allIn(op.Cond.Vars(), lv) {
				return &Join{Left: &Select{Input: j.Left, Cond: op.Cond}, Right: j.Right, Cond: j.Cond}, true
			}
			if allIn(op.Cond.Vars(), rv) {
				return &Join{Left: j.Left, Right: &Select{Input: j.Right, Cond: op.Cond}, Cond: j.Cond}, true
			}
		}
		// R2: push below variable-introducing unary operators when the
		// condition does not mention the new variable.
		switch in := op.Input.(type) {
		case *GetDescendants:
			if !mentions(op.Cond, in.Out) {
				return &GetDescendants{Input: &Select{Input: in.Input, Cond: op.Cond},
					Parent: in.Parent, Path: in.Path, Out: in.Out}, true
			}
		case *Concatenate:
			if !mentions(op.Cond, in.Out) {
				return &Concatenate{Input: &Select{Input: in.Input, Cond: op.Cond},
					X: in.X, Y: in.Y, Out: in.Out}, true
			}
		case *CreateElement:
			if !mentions(op.Cond, in.Out) {
				return &CreateElement{Input: &Select{Input: in.Input, Cond: op.Cond},
					Label: in.Label, Children: in.Children, Out: in.Out}, true
			}
		}
		return p, changed

	case *OrderBy:
		// R4: the outer sort destroys the inner order.
		if inner, ok := op.Input.(*OrderBy); ok {
			return &OrderBy{Input: inner.Input, Keys: op.Keys}, true
		}
		return p, changed

	case *Project:
		// R5: identity projection.
		if sameVarList(op.Keep, op.Input.OutVars()) {
			return op.Input, true
		}
		// R8: split the projection across a join, retaining the
		// join-condition variables on each side.
		if j, ok := op.Input.(*Join); ok {
			keep := varSet(op.Keep)
			for _, v := range j.Cond.Vars() {
				keep[v] = true
			}
			l := intersect(j.Left.OutVars(), keep)
			r := intersect(j.Right.OutVars(), keep)
			// Only rewrite when both sides actually shrink and stay
			// nonempty (Project requires ≥ 1 variable).
			if len(l) > 0 && len(r) > 0 &&
				(len(l) < len(j.Left.OutVars()) || len(r) < len(j.Right.OutVars())) {
				pushed := &Join{
					Left:  &Project{Input: j.Left, Keep: l},
					Right: &Project{Input: j.Right, Keep: r},
					Cond:  j.Cond,
				}
				if sameVarList(op.Keep, pushed.OutVars()) {
					return pushed, true
				}
				return &Project{Input: pushed, Keep: op.Keep}, true
			}
		}
		return p, changed

	case *Distinct:
		// R7: distinct is idempotent.
		if _, ok := op.Input.(*Distinct); ok {
			return op.Input, true
		}
		return p, changed
	}
	return p, changed
}

// intersect keeps the vars (in order) that appear in the set.
func intersect(vars []string, set map[string]bool) []string {
	var out []string
	for _, v := range vars {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}

// mapInputs returns a copy of p with each input replaced by fn(input);
// if fn is the identity on every input, p itself is returned.
func mapInputs(p Op, fn func(Op) Op) Op {
	switch op := p.(type) {
	case *Source:
		return op
	case *GetDescendants:
		in := fn(op.Input)
		if in == op.Input {
			return op
		}
		return &GetDescendants{Input: in, Parent: op.Parent, Path: op.Path, Out: op.Out}
	case *Select:
		in := fn(op.Input)
		if in == op.Input {
			return op
		}
		return &Select{Input: in, Cond: op.Cond}
	case *Join:
		l, r := fn(op.Left), fn(op.Right)
		if l == op.Left && r == op.Right {
			return op
		}
		return &Join{Left: l, Right: r, Cond: op.Cond}
	case *GroupBy:
		in := fn(op.Input)
		if in == op.Input {
			return op
		}
		return &GroupBy{Input: in, By: op.By, Var: op.Var, Out: op.Out}
	case *Concatenate:
		in := fn(op.Input)
		if in == op.Input {
			return op
		}
		return &Concatenate{Input: in, X: op.X, Y: op.Y, Out: op.Out}
	case *CreateElement:
		in := fn(op.Input)
		if in == op.Input {
			return op
		}
		return &CreateElement{Input: in, Label: op.Label, Children: op.Children, Out: op.Out}
	case *OrderBy:
		in := fn(op.Input)
		if in == op.Input {
			return op
		}
		return &OrderBy{Input: in, Keys: op.Keys}
	case *Project:
		in := fn(op.Input)
		if in == op.Input {
			return op
		}
		return &Project{Input: in, Keep: op.Keep}
	case *Union:
		l, r := fn(op.Left), fn(op.Right)
		if l == op.Left && r == op.Right {
			return op
		}
		return &Union{Left: l, Right: r}
	case *Difference:
		l, r := fn(op.Left), fn(op.Right)
		if l == op.Left && r == op.Right {
			return op
		}
		return &Difference{Left: l, Right: r}
	case *Distinct:
		in := fn(op.Input)
		if in == op.Input {
			return op
		}
		return &Distinct{Input: in}
	case *TupleDestroy:
		in := fn(op.Input)
		if in == op.Input {
			return op
		}
		return &TupleDestroy{Input: in, Var: op.Var}
	case *WrapList:
		in := fn(op.Input)
		if in == op.Input {
			return op
		}
		return &WrapList{Input: in, Var: op.Var, Out: op.Out}
	case *Const:
		in := fn(op.Input)
		if in == op.Input {
			return op
		}
		return &Const{Input: in, Value: op.Value, Out: op.Out}
	case *Rename:
		in := fn(op.Input)
		if in == op.Input {
			return op
		}
		return &Rename{Input: in, From: op.From, To: op.To}
	}
	return p
}

func varSet(vars []string) map[string]bool {
	s := make(map[string]bool, len(vars))
	for _, v := range vars {
		s[v] = true
	}
	return s
}

func allIn(vars []string, set map[string]bool) bool {
	for _, v := range vars {
		if !set[v] {
			return false
		}
	}
	return true
}

func mentions(c Cond, v string) bool {
	for _, x := range c.Vars() {
		if x == v {
			return true
		}
	}
	return false
}

func sameVarList(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := varSet(b)
	for _, v := range a {
		if !set[v] {
			return false
		}
	}
	return true
}

// OpCount returns the number of operators in the plan, a crude plan
// size measure used by the rewriting experiment.
func OpCount(p Op) int {
	n := 0
	Walk(p, func(Op) { n++ })
	return n
}
