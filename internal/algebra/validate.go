package algebra

import (
	"fmt"
	"sort"
)

// Validate checks that the plan is well-formed: every operator's
// variable references are defined by its input, no operator introduces
// a variable that already exists, Union/Difference inputs agree on
// their variables, and TupleDestroy (if present) is the root over a
// single remaining variable.
func Validate(p Op) error {
	_, err := validate(p)
	return err
}

func validate(p Op) (vars map[string]bool, err error) {
	ins := p.Inputs()
	inVars := make([]map[string]bool, len(ins))
	for i, in := range ins {
		v, err := validate(in)
		if err != nil {
			return nil, err
		}
		inVars[i] = v
	}
	need := func(set map[string]bool, name, what string) error {
		if name == "" {
			return fmt.Errorf("algebra: %s: empty variable name in %s", what, p.opString())
		}
		if !set[name] {
			return fmt.Errorf("algebra: %s: variable $%s not defined by input of %s", what, name, p.opString())
		}
		return nil
	}
	fresh := func(set map[string]bool, name string) error {
		if name == "" {
			return fmt.Errorf("algebra: empty output variable in %s", p.opString())
		}
		if set[name] {
			return fmt.Errorf("algebra: output variable $%s of %s shadows an input variable", name, p.opString())
		}
		return nil
	}

	switch op := p.(type) {
	case *Source:
		if op.URL == "" || op.Var == "" {
			return nil, fmt.Errorf("algebra: source needs url and variable")
		}
		return map[string]bool{op.Var: true}, nil

	case *GetDescendants:
		in := inVars[0]
		if err := need(in, op.Parent, "getDescendants parent"); err != nil {
			return nil, err
		}
		if op.Path == nil {
			return nil, fmt.Errorf("algebra: getDescendants without path expression")
		}
		if err := fresh(in, op.Out); err != nil {
			return nil, err
		}
		return withVar(in, op.Out), nil

	case *Select:
		in := inVars[0]
		for _, v := range op.Cond.Vars() {
			if err := need(in, v, "select condition"); err != nil {
				return nil, err
			}
		}
		return in, nil

	case *Join:
		l, r := inVars[0], inVars[1]
		for v := range l {
			if r[v] {
				return nil, fmt.Errorf("algebra: join inputs share variable $%s", v)
			}
		}
		both := union(l, r)
		for _, v := range op.Cond.Vars() {
			if err := need(both, v, "join condition"); err != nil {
				return nil, err
			}
		}
		return both, nil

	case *GroupBy:
		in := inVars[0]
		if len(op.By) == 0 {
			// grouping by the empty set is legal (one global group)
		}
		for _, v := range op.By {
			if err := need(in, v, "groupBy key"); err != nil {
				return nil, err
			}
		}
		if err := need(in, op.Var, "groupBy value"); err != nil {
			return nil, err
		}
		if err := fresh(in, op.Out); err != nil {
			return nil, err
		}
		out := map[string]bool{op.Out: true}
		for _, v := range op.By {
			out[v] = true
		}
		return out, nil

	case *Concatenate:
		in := inVars[0]
		if err := need(in, op.X, "concatenate x"); err != nil {
			return nil, err
		}
		if err := need(in, op.Y, "concatenate y"); err != nil {
			return nil, err
		}
		if err := fresh(in, op.Out); err != nil {
			return nil, err
		}
		return withVar(in, op.Out), nil

	case *CreateElement:
		in := inVars[0]
		if op.Label.Var != "" {
			if err := need(in, op.Label.Var, "createElement label"); err != nil {
				return nil, err
			}
		} else if op.Label.Const == "" {
			return nil, fmt.Errorf("algebra: createElement with empty constant label")
		}
		if err := need(in, op.Children, "createElement children"); err != nil {
			return nil, err
		}
		if err := fresh(in, op.Out); err != nil {
			return nil, err
		}
		return withVar(in, op.Out), nil

	case *OrderBy:
		in := inVars[0]
		if len(op.Keys) == 0 {
			return nil, fmt.Errorf("algebra: orderBy without keys")
		}
		for _, v := range op.Keys {
			if err := need(in, v, "orderBy key"); err != nil {
				return nil, err
			}
		}
		return in, nil

	case *Project:
		in := inVars[0]
		if len(op.Keep) == 0 {
			return nil, fmt.Errorf("algebra: project keeps no variables")
		}
		out := map[string]bool{}
		for _, v := range op.Keep {
			if err := need(in, v, "project"); err != nil {
				return nil, err
			}
			out[v] = true
		}
		return out, nil

	case *Union:
		if !sameVars(inVars[0], inVars[1]) {
			return nil, fmt.Errorf("algebra: union inputs carry different variables: %v vs %v",
				names(inVars[0]), names(inVars[1]))
		}
		return inVars[0], nil

	case *Difference:
		if !sameVars(inVars[0], inVars[1]) {
			return nil, fmt.Errorf("algebra: difference inputs carry different variables: %v vs %v",
				names(inVars[0]), names(inVars[1]))
		}
		return inVars[0], nil

	case *Distinct:
		return inVars[0], nil

	case *WrapList:
		in := inVars[0]
		if err := need(in, op.Var, "wrapList"); err != nil {
			return nil, err
		}
		if err := fresh(in, op.Out); err != nil {
			return nil, err
		}
		return withVar(in, op.Out), nil

	case *Const:
		in := inVars[0]
		if op.Value == nil {
			return nil, fmt.Errorf("algebra: const without value")
		}
		if err := fresh(in, op.Out); err != nil {
			return nil, err
		}
		return withVar(in, op.Out), nil

	case *Rename:
		in := inVars[0]
		if err := need(in, op.From, "rename"); err != nil {
			return nil, err
		}
		if op.To == op.From {
			return in, nil
		}
		if err := fresh(in, op.To); err != nil {
			return nil, err
		}
		out := make(map[string]bool, len(in))
		for k := range in {
			if k != op.From {
				out[k] = true
			}
		}
		out[op.To] = true
		return out, nil

	case *TupleDestroy:
		in := inVars[0]
		if err := need(in, op.Var, "tupleDestroy"); err != nil {
			return nil, err
		}
		return map[string]bool{}, nil

	default:
		return nil, fmt.Errorf("algebra: unknown operator %T", p)
	}
}

func withVar(set map[string]bool, v string) map[string]bool {
	out := make(map[string]bool, len(set)+1)
	for k := range set {
		out[k] = true
	}
	out[v] = true
	return out
}

func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func sameVars(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func names(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
