// Package algebra defines the XMAS algebra (Section 3): logical query
// plans whose operators consume and produce *lists of variable
// bindings*, conventionally pictured as trees
//
//	bs[ b[ X[x1], Y[y1] ], b[ X[x2], Y[y2] ], … ]
//
// The operators are the conventional relational ones (σ, ⋈, ×, ∪, \, δ,
// π) lifted to binding lists, plus the XML-specific ones:
// getDescendants (generalized path expressions), groupBy (explicit
// grouping, in place of Skolem functions), concatenate, createElement,
// orderBy, tupleDestroy and source.
//
// A plan is a tree of Op values. Plans are *logical*: they are
// interpreted either eagerly (package eager) or as a tree of lazy
// mediators (package core). The package also provides plan validation,
// pretty-printing, the browsability classifier of Definition 2, and the
// navigational-complexity rewriting rules used in preprocessing.
package algebra

import (
	"fmt"
	"strings"

	"mix/internal/pathexpr"
)

// Op is a node of an algebra plan. Every operator lists its inputs via
// Inputs and the variables its output bindings carry via OutVars.
type Op interface {
	// Inputs returns the operator's input plans, outermost first.
	Inputs() []Op
	// OutVars returns the variable names carried by output bindings,
	// in binding-tree order, given the input variable lists.
	OutVars() []string
	// opString renders just this node (without inputs).
	opString() string
}

// Source produces the singleton binding list bs[b[v[e]]] where e is the
// root element of the named source (source_url→v).
type Source struct {
	// URL names a registered source.
	URL string
	// Var is the variable bound to the source root.
	Var string
}

// Inputs implements Op.
func (s *Source) Inputs() []Op { return nil }

// OutVars implements Op.
func (s *Source) OutVars() []string { return []string{s.Var} }

func (s *Source) opString() string { return fmt.Sprintf("source[%s→$%s]", s.URL, s.Var) }

// GetDescendants extracts, for each input binding b and each descendant
// d of b.Parent reachable by a downward path matching Path, the output
// binding b + Out[d] (getDescendants_{e,re→ch}).
type GetDescendants struct {
	Input Op
	// Parent is the variable holding the context element.
	Parent string
	// Path is the generalized regular path expression.
	Path *pathexpr.Expr
	// Out is the new variable bound to each reachable descendant.
	Out string
}

// Inputs implements Op.
func (g *GetDescendants) Inputs() []Op { return []Op{g.Input} }

// OutVars implements Op.
func (g *GetDescendants) OutVars() []string { return append(g.Input.OutVars(), g.Out) }

func (g *GetDescendants) opString() string {
	return fmt.Sprintf("getDescendants[$%s, %s → $%s]", g.Parent, g.Path, g.Out)
}

// Select keeps only the input bindings satisfying Cond (σ).
type Select struct {
	Input Op
	Cond  Cond
}

// Inputs implements Op.
func (s *Select) Inputs() []Op { return []Op{s.Input} }

// OutVars implements Op.
func (s *Select) OutVars() []string { return s.Input.OutVars() }

func (s *Select) opString() string { return fmt.Sprintf("select[%s]", s.Cond) }

// Join produces, for each pair of left/right bindings satisfying Cond,
// their concatenation (nested-loops ⋈; with a trivially true condition
// it is the product ×).
type Join struct {
	Left, Right Op
	Cond        Cond
}

// Inputs implements Op.
func (j *Join) Inputs() []Op { return []Op{j.Left, j.Right} }

// OutVars implements Op.
func (j *Join) OutVars() []string { return append(j.Left.OutVars(), j.Right.OutVars()...) }

func (j *Join) opString() string { return fmt.Sprintf("join[%s]", j.Cond) }

// GroupBy groups the bindings of Var by the values of the By variables
// (groupBy_{v1..vk, v→l}): for each group agreeing on the By values one
// output binding b[v1[…],…,vk[…], Out[list[…grouped Var values…]]] is
// produced, in order of first occurrence.
type GroupBy struct {
	Input Op
	By    []string
	Var   string
	Out   string
}

// Inputs implements Op.
func (g *GroupBy) Inputs() []Op { return []Op{g.Input} }

// OutVars implements Op.
func (g *GroupBy) OutVars() []string { return append(append([]string{}, g.By...), g.Out) }

func (g *GroupBy) opString() string {
	by := ""
	if len(g.By) > 0 {
		by = "$" + strings.Join(g.By, ",$")
	}
	return fmt.Sprintf("groupBy[{%s} $%s → $%s]", by, g.Var, g.Out)
}

// Concatenate produces b + Out[conc] where conc is the list
// concatenation of b.X and b.Y, flattening list[…] values on either
// side (concatenate_{x,y→z}).
type Concatenate struct {
	Input Op
	X, Y  string
	Out   string
}

// Inputs implements Op.
func (c *Concatenate) Inputs() []Op { return []Op{c.Input} }

// OutVars implements Op.
func (c *Concatenate) OutVars() []string { return append(c.Input.OutVars(), c.Out) }

func (c *Concatenate) opString() string {
	return fmt.Sprintf("concatenate[$%s,$%s → $%s]", c.X, c.Y, c.Out)
}

// LabelSpec is the label parameter of createElement: either a constant
// or a variable whose bound value's text provides the label.
type LabelSpec struct {
	Const string
	Var   string // non-empty means dynamic label
}

func (l LabelSpec) String() string {
	if l.Var != "" {
		return "$" + l.Var
	}
	return fmt.Sprintf("%q", l.Const)
}

// CreateElement produces b + Out[l[c1…cn]] where l is the value of
// Label and c1…cn are the children of b.Children — the subtrees of the
// value bound to Children, with a list[…] value contributing its
// elements (createElement_{label,ch→e}).
type CreateElement struct {
	Input    Op
	Label    LabelSpec
	Children string
	Out      string
}

// Inputs implements Op.
func (c *CreateElement) Inputs() []Op { return []Op{c.Input} }

// OutVars implements Op.
func (c *CreateElement) OutVars() []string { return append(c.Input.OutVars(), c.Out) }

func (c *CreateElement) opString() string {
	return fmt.Sprintf("createElement[%s, $%s → $%s]", c.Label, c.Children, c.Out)
}

// OrderBy reorders the bindings by the values of the Keys variables
// (ascending, numeric-aware). It is the paper's canonical unbrowsable
// operator: no output binding can be produced before the whole input
// has been seen.
type OrderBy struct {
	Input Op
	Keys  []string
}

// Inputs implements Op.
func (o *OrderBy) Inputs() []Op { return []Op{o.Input} }

// OutVars implements Op.
func (o *OrderBy) OutVars() []string { return o.Input.OutVars() }

func (o *OrderBy) opString() string {
	return fmt.Sprintf("orderBy[$%s]", strings.Join(o.Keys, ",$"))
}

// Project keeps only the named variables of each binding (π).
type Project struct {
	Input Op
	Keep  []string
}

// Inputs implements Op.
func (p *Project) Inputs() []Op { return []Op{p.Input} }

// OutVars implements Op.
func (p *Project) OutVars() []string { return append([]string{}, p.Keep...) }

func (p *Project) opString() string { return fmt.Sprintf("project[$%s]", strings.Join(p.Keep, ",$")) }

// Union appends the right binding list after the left (∪, list
// semantics: duplicates preserved, order left-then-right). Both inputs
// must carry the same variables.
type Union struct {
	Left, Right Op
}

// Inputs implements Op.
func (u *Union) Inputs() []Op { return []Op{u.Left, u.Right} }

// OutVars implements Op.
func (u *Union) OutVars() []string { return u.Left.OutVars() }

func (u *Union) opString() string { return "union" }

// Difference removes from the left list every binding structurally
// equal to some right binding (\). Unbrowsable on the right input.
type Difference struct {
	Left, Right Op
}

// Inputs implements Op.
func (d *Difference) Inputs() []Op { return []Op{d.Left, d.Right} }

// OutVars implements Op.
func (d *Difference) OutVars() []string { return d.Left.OutVars() }

func (d *Difference) opString() string { return "difference" }

// Distinct removes duplicate bindings, keeping first occurrences (δ).
type Distinct struct {
	Input Op
}

// Inputs implements Op.
func (d *Distinct) Inputs() []Op { return []Op{d.Input} }

// OutVars implements Op.
func (d *Distinct) OutVars() []string { return d.Input.OutVars() }

func (d *Distinct) opString() string { return "distinct" }

// TupleDestroy unwraps the singleton binding list bs[b[v[e]]] and
// returns the element e as the final document. It is always the plan
// root.
type TupleDestroy struct {
	Input Op
	Var   string
}

// Inputs implements Op.
func (t *TupleDestroy) Inputs() []Op { return []Op{t.Input} }

// OutVars implements Op.
func (t *TupleDestroy) OutVars() []string { return nil }

func (t *TupleDestroy) opString() string { return fmt.Sprintf("tupleDestroy[$%s]", t.Var) }

// String renders the plan as an indented operator tree, root first, in
// the style of Fig. 4.
func String(p Op) string {
	var b strings.Builder
	writePlan(&b, p, 0)
	return b.String()
}

func writePlan(b *strings.Builder, p Op, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(p.opString())
	b.WriteByte('\n')
	for _, in := range p.Inputs() {
		writePlan(b, in, depth+1)
	}
}

// Walk visits p and all its descendants, root first.
func Walk(p Op, fn func(Op)) {
	fn(p)
	for _, in := range p.Inputs() {
		Walk(in, fn)
	}
}

// Sources returns the names of all sources referenced by the plan, in
// left-to-right order, with duplicates preserved.
func Sources(p Op) []string {
	var out []string
	Walk(p, func(op Op) {
		if s, ok := op.(*Source); ok {
			out = append(out, s.URL)
		}
	})
	return out
}
