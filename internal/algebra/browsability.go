package algebra

// Browsability classification (Definition 2 and Example 1 of the
// paper). The classifier is a static, conservative analysis of the
// plan: each operator contributes the worst-case relationship between
// navigations on its output and navigations required on its inputs,
// and the plan's class is the worst class of any operator in it.
//
//   - Bounded browsable: every client navigation is answered with at
//     most f(n) source navigations, for a function f of the client
//     navigation length only (e.g. pure restructuring: concatenate of
//     source lists, createElement, tupleDestroy).
//   - (Unbounded) browsable: the answer may be computable from a part
//     of the input, but no data-independent bound exists (selection,
//     join, grouping, non-trivial path extraction).
//   - Unbrowsable: some navigation requires reading at least one input
//     list in its entirety regardless of the data (orderBy; the right
//     input of difference; distinct? no — distinct can emit first
//     occurrences lazily, so it is browsable).

// Browsability is the class of a view per Definition 2.
type Browsability int

// Ordered from best to worst, so the plan class is the max.
const (
	BoundedBrowsable Browsability = iota
	Browsable
	Unbrowsable
)

func (b Browsability) String() string {
	switch b {
	case BoundedBrowsable:
		return "bounded browsable"
	case Browsable:
		return "browsable"
	case Unbrowsable:
		return "unbrowsable"
	default:
		return "unknown"
	}
}

// Classify returns the browsability class of the plan and, for
// diagnosis, the first operator (in root-first order) responsible for
// the class (nil when bounded).
//
// The classification assumes the basic command set NC = {d, r, f}.
// When nativeSelect is true the analysis assumes select(σ) is part of
// NC and supported natively by the sources, which upgrades label
// selections and label-predicate path steps from browsable to bounded
// (the Example 1 observation).
func Classify(p Op, nativeSelect bool) (Browsability, Op) {
	worst := BoundedBrowsable
	var culprit Op
	Walk(p, func(op Op) {
		c := classifyOp(op, nativeSelect)
		if c > worst {
			worst = c
			culprit = op
		}
	})
	return worst, culprit
}

func classifyOp(op Op, nativeSelect bool) Browsability {
	switch op := op.(type) {
	case *Source, *TupleDestroy, *Concatenate, *CreateElement, *Project, *Union,
		*WrapList, *Const, *Rename:
		// Pure restructuring: output navigations map to a bounded
		// number of input navigations (qconc of Example 1).
		return BoundedBrowsable

	case *GetDescendants:
		// A fixed-length wildcard chain mirrors client navigations 1:1
		// (every child matches); a fixed label path costs one source
		// command per step when NC includes select(σ); anything
		// recursive must scan.
		if op.Path.IsWildcardChain() {
			return BoundedBrowsable
		}
		if nativeSelect && !op.Path.IsRecursive() && op.Path.MaxDepth() >= 0 {
			return BoundedBrowsable
		}
		return Browsable

	case *Select:
		// Finding the next qualifying binding scans the input
		// (Example 1's q_σ)… unless the condition is a pure label
		// test and the source supports select(σ) natively.
		if nativeSelect {
			if _, ok := op.Cond.(*LabelMatch); ok {
				return BoundedBrowsable
			}
		}
		return Browsable

	case *Join:
		// A product of two single-binding inputs involves no scans;
		// a real join scans for the next qualifying pair.
		if _, isTrue := op.Cond.(True); isTrue && isSingleton(op.Left) && isSingleton(op.Right) {
			return BoundedBrowsable
		}
		return Browsable

	case *GroupBy:
		// Grouping by {} produces one output binding whose grouped
		// list mirrors the input 1:1; real grouping scans for the
		// next group / next member (Appendix A).
		if len(op.By) == 0 {
			return BoundedBrowsable
		}
		return Browsable

	case *Distinct:
		// Producing the next output may scan unboundedly far in the
		// input, but never *requires* the complete list.
		return Browsable

	case *OrderBy:
		// Cannot emit the first binding before the whole input list
		// is read: unbrowsable regardless of the data (Example 1).
		return Unbrowsable

	case *Difference:
		// The entire right input must be read before the first left
		// binding can be safely emitted.
		return Unbrowsable

	default:
		return Unbrowsable
	}
}

// isSingleton reports (conservatively) whether the plan always produces
// exactly one binding.
func isSingleton(p Op) bool {
	switch op := p.(type) {
	case *Source:
		return true
	case *GroupBy:
		return len(op.By) == 0
	case *Join:
		_, isTrue := op.Cond.(True)
		return isTrue && isSingleton(op.Left) && isSingleton(op.Right)
	case *Concatenate, *CreateElement, *WrapList, *Const, *Rename, *Project, *Distinct:
		return isSingleton(p.Inputs()[0])
	default:
		return false
	}
}
