package algebra

import (
	"strconv"
	"strings"

	"mix/internal/pathexpr"
	"mix/internal/xmltree"
)

// This file implements the conservative plan-containment checker behind
// the semantic region cache (DESIGN.md §14). Given two canonicalized
// plans — a cached *super* plan and a freshly compiled *sub* plan — it
// decides whether every answer of sub can be reconstructed from super's
// fully materialized answer document by purely local work: filtering
// bindings with a residual condition, re-verifying weakened single-step
// paths against subtree root labels, and re-running short
// getDescendants/select chains over materialized group subtrees. The
// checker is sound but deliberately incomplete: whenever a shape falls
// outside the rules below it answers "no" and the engine falls back to
// the ordinary source-backed plan.

// PathRewrite records a getDescendants whose path the sub plan
// restricts relative to the super plan. Super is the super plan's full
// path; Sub is always a *single-step* label test: either the sub path
// itself (both paths single-step, L(sub) ⊆ L(super)) or the restricted
// final step of two sequences with an identical prefix (see
// weakenedStep). Either way the restriction is re-verified from the
// materialized subtree alone — test its root label against Sub — which
// is what makes the weakening sound.
type PathRewrite struct {
	// Var is the getDescendants output variable, in sub-plan names.
	Var        string
	Super, Sub *pathexpr.Expr
}

// ChainOp is one operator of a group chain (ShapeConstruct): a
// getDescendants when Path is non-nil (Parent, Out are chain-local
// variable names), otherwise a select over chain-local variables. The
// chains are locally evaluable: starting from a binding of the group
// variable to a materialized subtree, every parent and condition
// variable is the group variable or an earlier chain output.
type ChainOp struct {
	Parent, Out string
	Path        *pathexpr.Expr
	Cond        Cond
}

// Shape says how a containment result is applied to the super plan's
// materialized answer document.
type Shape int

const (
	// ShapeBindings: both plans answer with a binding-list document
	// bs[b[…]…]. Sub's answer is super's with each b kept iff it passes
	// Residual and the Paths label tests, children relabeled to sub's
	// output variables (positionally aligned).
	ShapeBindings Shape = iota
	// ShapeConstruct: both plans are tupleDestroy(createElement(groupBy
	// by {}))) constructions. Sub's answer element is decoded from
	// super's children by runs: see DESIGN.md §14.
	ShapeConstruct
)

// GroupChainVar is the variable name both group chains bind the
// materialized group subtree to; chain-local variables are renamed so
// they cannot collide with it.
const GroupChainVar = "g~"

// Containment is the evidence Analyze returns: everything an engine
// needs to rebuild sub's answer from super's materialized answer.
type Containment struct {
	Shape Shape

	// ShapeBindings: Residual is the per-binding filter (True if none),
	// Paths the per-binding label tests, SubTopVars sub's canonical
	// output variables in positional alignment with super's answer
	// children.
	Residual   Cond
	Paths      []PathRewrite
	SubTopVars []string

	// ShapeConstruct: the answer's decoration labels (outermost first —
	// each level holds exactly one child of the next label, and the
	// innermost element's children are the grouped values), the
	// per-group-subtree label test (nil if the grouping paths agree),
	// and the two locally evaluable chains above the group binding.
	// SuperChain counts the multiplicity each subtree contributed to
	// the innermost children; SubChain counts the multiplicity sub
	// requires. Both bind GroupChainVar to the subtree.
	RootLabels []string
	GroupPath  *PathRewrite
	SuperChain []ChainOp
	SubChain   []ChainOp
}

// Contains is the simple entry point: it reports whether sub's answer
// can be computed from a fully explored region of super's, returning
// the residual condition and path rewrites to apply. Engines that need
// the full reconstruction recipe (construction shapes) use Analyze.
func Contains(super, sub Op) (residual Cond, paths []PathRewrite, ok bool) {
	c, ok := Analyze(super, sub)
	if !ok {
		return nil, nil, false
	}
	paths = append([]PathRewrite{}, c.Paths...)
	if c.GroupPath != nil {
		paths = append(paths, *c.GroupPath)
	}
	return c.Residual, paths, true
}

// Analyze decides containment of sub in super. Both plans must be in
// RenameVars normal form (regioncache.Canonical); variable names are
// still compared via an on-the-fly bijection, since canonical numbering
// depends on each plan's own structure.
func Analyze(super, sub Op) (*Containment, bool) {
	if super == nil || sub == nil {
		return nil, false
	}
	if ts, ok := super.(*TupleDestroy); ok {
		tq, ok := sub.(*TupleDestroy)
		if !ok {
			return nil, false
		}
		return analyzeConstruct(ts, tq)
	}
	if _, ok := sub.(*TupleDestroy); ok {
		return nil, false
	}
	return analyzeBindings(super, sub)
}

// ---------------------------------------------------------------------
// ShapeBindings: structural match with residual hoisting.

func analyzeBindings(s, q Op) (*Containment, bool) {
	m := newMatcher()
	rs, ok := m.match(s, q)
	if !ok {
		return nil, false
	}
	subTop := q.OutVars()
	supTop := s.OutVars()
	// The filter-and-relabel evaluation is positional: super's b child k
	// must be sub's output variable k under the bijection.
	if len(supTop) != len(subTop) {
		return nil, false
	}
	for i := range supTop {
		if m.fwd[supTop[i]] != subTop[i] {
			return nil, false
		}
	}
	allowed := map[string]bool{}
	for _, v := range subTop {
		allowed[v] = true
	}
	var cond Cond = True{}
	var paths []PathRewrite
	for _, r := range rs {
		if r.gd != nil {
			// An extra descent multiplies bindings; the positional
			// filter-and-relabel evaluation cannot reproduce that.
			return nil, false
		}
		if r.pr != nil {
			if !allowed[r.pr.Var] {
				return nil, false
			}
			paths = append(paths, *r.pr)
			continue
		}
		for _, v := range r.cond.Vars() {
			if !allowed[v] {
				return nil, false
			}
		}
		if _, isTrue := cond.(True); isTrue {
			cond = r.cond
		} else {
			cond = &And{L: cond, R: r.cond}
		}
	}
	return &Containment{Shape: ShapeBindings, Residual: cond, Paths: paths,
		SubTopVars: subTop}, true
}

// residual is an obligation hoisted toward the plan root: a sub-plan
// condition super does not apply, a path weakening to re-verify, or a
// whole getDescendants the sub plan runs and super does not (gd).
// Extra descents multiply bindings, so only the construct decode — via
// a locally evaluable group chain — can discharge them;
// analyzeBindings rejects them outright.
type residual struct {
	cond Cond
	pr   *PathRewrite
	gd   *GetDescendants
}

// weakenedStep decides whether the sub path restricts the super path in
// a way that a bound node's own label re-verifies, returning the
// single-step label test. Two cases: both paths single-step with
// L(sub) ⊆ L(super) — the test is the sub path itself; or both paths
// are sequences with an *identical* prefix whose final steps are
// single-step with L(subLast) ⊆ L(supLast). A single-step part consumes
// exactly one label, so the sequence split is positionally unique
// (pathexpr.SplitLast): super-membership already certifies the prefix,
// and sub-membership then reduces to the final label alone.
func weakenedStep(sup, sub *pathexpr.Expr) (*pathexpr.Expr, bool) {
	if pathexpr.SingleStep(sup) && pathexpr.SingleStep(sub) && pathexpr.Subset(sub, sup) {
		return sub, true
	}
	supPre, supLast, ok := pathexpr.SplitLast(sup)
	if !ok {
		return nil, false
	}
	subPre, subLast, ok := pathexpr.SplitLast(sub)
	if !ok || subPre != supPre || !pathexpr.Subset(subLast, supLast) {
		return nil, false
	}
	return subLast, true
}

// matcher carries the variable bijection between the two canonical
// namespaces (fwd: super → sub).
type matcher struct {
	fwd, rev map[string]string
}

func newMatcher() *matcher {
	return &matcher{fwd: map[string]string{}, rev: map[string]string{}}
}

func (m *matcher) clone() *matcher {
	c := newMatcher()
	for k, v := range m.fwd {
		c.fwd[k] = v
	}
	for k, v := range m.rev {
		c.rev[k] = v
	}
	return c
}

func (m *matcher) adopt(o *matcher) { m.fwd, m.rev = o.fwd, o.rev }

// bindVar records a fresh binder pair; it fails if either side is
// already bound (plans in normal form bind each variable once, so a
// rebinding means the shapes disagree).
func (m *matcher) bindVar(sv, qv string) bool {
	if _, ok := m.fwd[sv]; ok {
		return false
	}
	if _, ok := m.rev[qv]; ok {
		return false
	}
	m.fwd[sv] = qv
	m.rev[qv] = sv
	return true
}

// sameVar checks a variable *use*: the pair must already be in the
// bijection (uses always sit above their binders in a valid plan).
func (m *matcher) sameVar(sv, qv string) bool { return m.fwd[sv] == qv && m.rev[qv] == sv }

func (m *matcher) sameVars(sv, qv []string) bool {
	if len(sv) != len(qv) {
		return false
	}
	for i := range sv {
		if !m.sameVar(sv[i], qv[i]) {
			return false
		}
	}
	return true
}

// match compares the super node s against the sub node q, returning the
// hoisted residuals. Residual conditions are in sub-plan names.
func (m *matcher) match(s, q Op) ([]residual, bool) {
	// An extra select on the sub side (sub strictly stricter): hoist its
	// condition and keep matching below it. When both sides are selects
	// the *Select case below tries pairing first.
	if qs, ok := q.(*Select); ok {
		if _, both := s.(*Select); !both {
			rs, ok := m.match(s, qs.Input)
			if !ok {
				return nil, false
			}
			return append(rs, residual{cond: qs.Cond}), true
		}
	}
	// An extra getDescendants on the sub side binds a variable super
	// never derives: hoist the whole descent. When both sides are
	// getDescendants the *GetDescendants case below tries pairing first.
	if qg, ok := q.(*GetDescendants); ok {
		if _, both := s.(*GetDescendants); !both {
			rs, ok := m.match(s, qg.Input)
			if !ok {
				return nil, false
			}
			return append(rs, residual{gd: qg}), true
		}
	}

	switch s := s.(type) {
	case *Source:
		qt, ok := q.(*Source)
		if !ok || s.URL != qt.URL {
			return nil, false
		}
		if !m.bindVar(s.Var, qt.Var) {
			return nil, false
		}
		return nil, true

	case *Select:
		qt, ok := q.(*Select)
		if !ok {
			return nil, false // super is stricter: it filters where sub does not
		}
		// Paired: sub's condition must imply super's, and sub's full
		// condition becomes the residual (filtering super's output by it
		// yields exactly sub's output). Structurally equal conditions
		// need no residual at all.
		if m2 := m.clone(); true {
			if rs, ok := m2.match(s.Input, qt.Input); ok {
				if mapped, ok := m2.mapCond(s.Cond); ok {
					if mapped.String() == qt.Cond.String() {
						m.adopt(m2)
						return rs, true
					}
					if implies(qt.Cond, mapped) {
						m.adopt(m2)
						return append(rs, residual{cond: qt.Cond}), true
					}
				}
			}
		}
		// Otherwise treat sub's select as extra and require super's
		// select to pair further down.
		rs, ok := m.match(s, qt.Input)
		if !ok {
			return nil, false
		}
		return append(rs, residual{cond: qt.Cond}), true

	case *GetDescendants:
		qt, ok := q.(*GetDescendants)
		if !ok {
			return nil, false
		}
		// Paired first: same parent and binder under the bijection, with
		// the same path or a weakening a label test re-verifies (see
		// weakenedStep — a multi-step super path can otherwise reach
		// deeper nodes whose labels coincidentally pass sub's test).
		if m2 := m.clone(); true {
			if rs, ok := m2.match(s.Input, qt.Input); ok &&
				m2.sameVar(s.Parent, qt.Parent) && m2.bindVar(s.Out, qt.Out) {
				if s.Path.String() == qt.Path.String() {
					m.adopt(m2)
					return rs, true
				}
				if step, okw := weakenedStep(s.Path, qt.Path); okw {
					m.adopt(m2)
					return append(rs, residual{pr: &PathRewrite{Var: qt.Out, Super: s.Path, Sub: step}}), true
				}
			}
		}
		// Otherwise treat sub's descent as extra and require super's to
		// pair further down.
		rs, ok := m.match(s, qt.Input)
		if !ok {
			return nil, false
		}
		return append(rs, residual{gd: qt}), true

	case *Join:
		qt, ok := q.(*Join)
		if !ok {
			return nil, false
		}
		rl, ok := m.match(s.Left, qt.Left)
		if !ok {
			return nil, false
		}
		rr, ok := m.match(s.Right, qt.Right)
		if !ok {
			return nil, false
		}
		rs := append(rl, rr...)
		mapped, ok := m.mapCond(s.Cond)
		if !ok {
			return nil, false
		}
		if mapped.String() == qt.Cond.String() {
			return rs, true
		}
		if implies(qt.Cond, mapped) {
			return append(rs, residual{cond: qt.Cond}), true
		}
		return nil, false

	case *GroupBy:
		// Grouping aggregates across bindings, so nothing commutes past
		// it: the inputs must match exactly, with no pending residuals.
		qt, ok := q.(*GroupBy)
		if !ok {
			return nil, false
		}
		rs, ok := m.match(s.Input, qt.Input)
		if !ok || len(rs) != 0 {
			return nil, false
		}
		if !m.sameVars(s.By, qt.By) || !m.sameVar(s.Var, qt.Var) || !m.bindVar(s.Out, qt.Out) {
			return nil, false
		}
		return nil, true

	case *OrderBy:
		// Stable sort commutes with filtering: sorting the filtered
		// stream equals filtering the sorted stream.
		qt, ok := q.(*OrderBy)
		if !ok {
			return nil, false
		}
		rs, ok := m.match(s.Input, qt.Input)
		if !ok {
			return nil, false
		}
		if !m.sameVars(s.Keys, qt.Keys) {
			return nil, false
		}
		return rs, true

	case *Project:
		qt, ok := q.(*Project)
		if !ok {
			return nil, false
		}
		rs, ok := m.match(s.Input, qt.Input)
		if !ok {
			return nil, false
		}
		if !m.sameVars(s.Keep, qt.Keep) {
			return nil, false
		}
		// Residuals survive only if projection keeps their variables.
		kept := map[string]bool{}
		for _, v := range qt.Keep {
			kept[v] = true
		}
		for _, r := range rs {
			for _, v := range residualVars(r) {
				if !kept[v] {
					return nil, false
				}
			}
		}
		return rs, true

	case *Union:
		// A residual from one branch would also filter the other
		// branch's bindings once hoisted above the union; require both
		// branches residual-free.
		qt, ok := q.(*Union)
		if !ok {
			return nil, false
		}
		rl, ok := m.match(s.Left, qt.Left)
		if !ok || len(rl) != 0 {
			return nil, false
		}
		rr, ok := m.match(s.Right, qt.Right)
		if !ok || len(rr) != 0 {
			return nil, false
		}
		return nil, true

	case *Difference:
		// Filtering the left side commutes with subtraction; a filtered
		// right side changes what is subtracted, so it must match
		// exactly.
		qt, ok := q.(*Difference)
		if !ok {
			return nil, false
		}
		rl, ok := m.match(s.Left, qt.Left)
		if !ok {
			return nil, false
		}
		rr, ok := m.match(s.Right, qt.Right)
		if !ok || len(rr) != 0 {
			return nil, false
		}
		// An extra descent on the left changes the left side's variable
		// set, so subtraction would compare differently-shaped bindings;
		// a valid plan cannot reach this, but stay conservative.
		for _, r := range rl {
			if r.gd != nil {
				return nil, false
			}
		}
		return rl, true

	case *Distinct:
		// Sound because distinct keys on every output variable: bindings
		// with equal keys evaluate any residual identically, so
		// filter-then-distinct equals distinct-then-filter (including
		// first-occurrence order). An extra descent is different — sub's
		// distinct collapses the multiplied copies while the hoisted
		// chain would multiply the collapsed output, so it cannot cross.
		qt, ok := q.(*Distinct)
		if !ok {
			return nil, false
		}
		rs, ok := m.match(s.Input, qt.Input)
		if !ok {
			return nil, false
		}
		for _, r := range rs {
			if r.gd != nil {
				return nil, false
			}
		}
		return rs, true

	case *Concatenate:
		qt, ok := q.(*Concatenate)
		if !ok {
			return nil, false
		}
		rs, ok := m.match(s.Input, qt.Input)
		if !ok {
			return nil, false
		}
		if !m.sameVar(s.X, qt.X) || !m.sameVar(s.Y, qt.Y) || !m.bindVar(s.Out, qt.Out) {
			return nil, false
		}
		return rs, true

	case *CreateElement:
		qt, ok := q.(*CreateElement)
		if !ok {
			return nil, false
		}
		rs, ok := m.match(s.Input, qt.Input)
		if !ok {
			return nil, false
		}
		if s.Label.Var != "" || qt.Label.Var != "" {
			if s.Label.Var == "" || qt.Label.Var == "" || !m.sameVar(s.Label.Var, qt.Label.Var) {
				return nil, false
			}
		} else if s.Label.Const != qt.Label.Const {
			return nil, false
		}
		if !m.sameVar(s.Children, qt.Children) || !m.bindVar(s.Out, qt.Out) {
			return nil, false
		}
		return rs, true

	case *WrapList:
		qt, ok := q.(*WrapList)
		if !ok {
			return nil, false
		}
		rs, ok := m.match(s.Input, qt.Input)
		if !ok {
			return nil, false
		}
		if !m.sameVar(s.Var, qt.Var) || !m.bindVar(s.Out, qt.Out) {
			return nil, false
		}
		return rs, true

	case *Const:
		qt, ok := q.(*Const)
		if !ok || !xmltree.Equal(s.Value, qt.Value) {
			return nil, false
		}
		rs, ok := m.match(s.Input, qt.Input)
		if !ok {
			return nil, false
		}
		if !m.bindVar(s.Out, qt.Out) {
			return nil, false
		}
		return rs, true

	case *Rename:
		qt, ok := q.(*Rename)
		if !ok {
			return nil, false
		}
		rs, ok := m.match(s.Input, qt.Input)
		if !ok {
			return nil, false
		}
		if !m.sameVar(s.From, qt.From) || !m.bindVar(s.To, qt.To) {
			return nil, false
		}
		// The renamed-away variable survives under its new name; rewrite
		// residuals so the top-of-plan evaluation finds it.
		out := make([]residual, 0, len(rs))
		for _, r := range rs {
			if r.pr != nil {
				if r.pr.Var == qt.From {
					pr := *r.pr
					pr.Var = qt.To
					r.pr = &pr
				}
				out = append(out, r)
				continue
			}
			if r.gd != nil {
				if r.gd.Parent == qt.From || r.gd.Out == qt.From {
					g := *r.gd
					if g.Parent == qt.From {
						g.Parent = qt.To
					}
					if g.Out == qt.From {
						g.Out = qt.To
					}
					r.gd = &g
				}
				out = append(out, r)
				continue
			}
			out = append(out, residual{cond: renameCondVar(r.cond, qt.From, qt.To)})
		}
		return out, true
	}

	// Unknown or root-only operator (TupleDestroy): conservative no.
	return nil, false
}

func residualVars(r residual) []string {
	if r.pr != nil {
		return []string{r.pr.Var}
	}
	if r.gd != nil {
		// A hoisted descent re-derives from the group subtree, not from
		// the plan's binding columns, so projection constrains nothing.
		return nil
	}
	return r.cond.Vars()
}

// ---------------------------------------------------------------------
// ShapeConstruct: tupleDestroy(createElement(groupBy-by-{})) plans.

func analyzeConstruct(s, q *TupleDestroy) (*Containment, bool) {
	sLabels, sGB, ok := peelConstruct(s)
	if !ok {
		return nil, false
	}
	qLabels, qGB, ok := peelConstruct(q)
	if !ok || len(sLabels) != len(qLabels) {
		return nil, false
	}
	for i := range sLabels {
		if sLabels[i] != qLabels[i] {
			return nil, false
		}
	}

	sOps, sBase := chainOf(sGB.Input)
	qOps, qBase := chainOf(qGB.Input)
	m := newMatcher()
	rs, ok := m.match(sBase, qBase)
	if !ok {
		return nil, false
	}
	// Residuals hoisted out of the base survive only as extra sub chain
	// ops: descents and conditions that localChain below certifies as
	// evaluable from the group subtree alone. They then multiply or
	// filter sub's bindings exactly as they did at their original plan
	// position — per base binding, hence per group context — which is
	// what the run decode models. A path rewrite cannot: re-verifying it
	// needs the weakened variable's value per context, which the
	// materialized answer does not retain.
	var qExtra []Op
	for _, r := range rs {
		switch {
		case r.pr != nil:
			return nil, false
		case r.gd != nil:
			qExtra = append(qExtra, r.gd)
		default:
			qExtra = append(qExtra, &Select{Cond: r.cond})
		}
	}

	si := indexOfOut(sOps, sGB.Var)
	qi := indexOfOut(qOps, qGB.Var)
	if (si < 0) != (qi < 0) || si != qi {
		return nil, false
	}
	var groupPath *PathRewrite
	if si < 0 {
		// The grouped variable is bound inside the (exactly matched)
		// base; the whole chains are "above the group binding".
		if m.fwd[sGB.Var] != qGB.Var {
			return nil, false
		}
	} else {
		// Below and at the group binding the chains must agree 1:1; only
		// the group binding itself may weaken its (single-step) path.
		for k := 0; k <= si; k++ {
			gp, ok := m.matchChainOp(sOps[k], qOps[k], k == si)
			if !ok {
				return nil, false
			}
			if gp != nil {
				groupPath = gp
			}
		}
	}

	superChain, ok := localChain(sOps[si+1:], sGB.Var, "s~")
	if !ok {
		return nil, false
	}
	// Base residuals sit below sub's above-group chain in the plan, so
	// they come first; rs is already in bottom-up order, which keeps
	// each descent before its dependents.
	subChain, ok := localChain(append(qExtra, qOps[qi+1:]...), qGB.Var, "q~")
	if !ok {
		return nil, false
	}
	// Soundness of the run decoding requires: whenever sub derives a
	// binding from a subtree, super derives at least one (a subtree sub
	// needs cannot be absent from super's children). Embedding super's
	// chain into sub's — each super step covered by a sub step at least
	// as strict — gives exactly that.
	if !embeds(superChain, subChain) {
		return nil, false
	}
	return &Containment{Shape: ShapeConstruct, Residual: True{},
		RootLabels: sLabels, GroupPath: groupPath,
		SuperChain: superChain, SubChain: subChain}, true
}

// peelConstruct unwraps the decoration stack of a construction plan:
// tupleDestroy over a constant-label createElement, optionally nesting
// further wrapList(createElement(...)) levels, with the innermost
// createElement's children coming straight from a groupBy with no
// grouping variables. The groupBy yields exactly one binding per input
// list, so each decoration level materializes exactly one element of
// the next label, and the grouped values are the innermost element's
// children. Returns the label stack (outermost first) and the groupBy.
func peelConstruct(td *TupleDestroy) ([]string, *GroupBy, bool) {
	ce, ok := td.Input.(*CreateElement)
	if !ok || td.Var != ce.Out || ce.Label.Var != "" {
		return nil, nil, false
	}
	labels := []string{ce.Label.Const}
	for {
		switch in := ce.Input.(type) {
		case *GroupBy:
			if len(in.By) != 0 || ce.Children != in.Out {
				return nil, nil, false
			}
			return labels, in, true
		case *WrapList:
			if ce.Children != in.Out {
				return nil, nil, false
			}
			inner, ok := in.Input.(*CreateElement)
			if !ok || inner.Out != in.Var || inner.Label.Var != "" {
				return nil, nil, false
			}
			labels = append(labels, inner.Label.Const)
			ce = inner
		default:
			return nil, nil, false
		}
	}
}

// chainOf splits a plan into its select/getDescendants spine (bottom-up
// order) and the base below it.
func chainOf(p Op) (ops []Op, base Op) {
	var rev []Op
	for {
		switch t := p.(type) {
		case *Select:
			rev = append(rev, t)
			p = t.Input
		case *GetDescendants:
			rev = append(rev, t)
			p = t.Input
		default:
			for i := len(rev) - 1; i >= 0; i-- {
				ops = append(ops, rev[i])
			}
			return ops, p
		}
	}
}

// indexOfOut finds the getDescendants binding v in a chain, -1 if none.
func indexOfOut(ops []Op, v string) int {
	for i, op := range ops {
		if g, ok := op.(*GetDescendants); ok && g.Out == v {
			return i
		}
	}
	return -1
}

// matchChainOp matches one below-group chain position exactly (modulo
// the bijection), allowing path weakening only at the group binding.
func (m *matcher) matchChainOp(sOp, qOp Op, weaken bool) (*PathRewrite, bool) {
	switch st := sOp.(type) {
	case *GetDescendants:
		qt, ok := qOp.(*GetDescendants)
		if !ok {
			return nil, false
		}
		if !m.sameVar(st.Parent, qt.Parent) || !m.bindVar(st.Out, qt.Out) {
			return nil, false
		}
		if st.Path.String() == qt.Path.String() {
			return nil, true
		}
		if weaken {
			if step, ok := weakenedStep(st.Path, qt.Path); ok {
				return &PathRewrite{Var: GroupChainVar, Super: st.Path, Sub: step}, true
			}
		}
		return nil, false
	case *Select:
		qt, ok := qOp.(*Select)
		if !ok {
			return nil, false
		}
		mapped, ok := m.mapCond(st.Cond)
		if !ok || mapped.String() != qt.Cond.String() {
			return nil, false
		}
		return nil, true
	}
	return nil, false
}

// localChain renames an above-group chain into the chain-local
// namespace (group variable → GroupChainVar, outputs prefixed) and
// rejects chains that are not locally evaluable over the group subtree.
func localChain(ops []Op, g, prefix string) ([]ChainOp, bool) {
	sub := map[string]string{g: GroupChainVar}
	var out []ChainOp
	for _, op := range ops {
		switch t := op.(type) {
		case *GetDescendants:
			p, ok := sub[t.Parent]
			if !ok {
				return nil, false
			}
			if _, rebound := sub[t.Out]; rebound {
				return nil, false
			}
			no := prefix + t.Out
			sub[t.Out] = no
			out = append(out, ChainOp{Parent: p, Out: no, Path: t.Path})
		case *Select:
			c, ok := substCond(t.Cond, sub)
			if !ok {
				return nil, false
			}
			out = append(out, ChainOp{Cond: c})
		default:
			return nil, false
		}
	}
	return out, true
}

// embeds checks an order-preserving injective embedding of super's
// chain into sub's: every super getDescendants maps to a sub
// getDescendants with the same (embedded) parent and a path language no
// larger, and every super select to a sub select whose condition
// implies it. Then any sub derivation over a subtree yields a super
// derivation, i.e. sub-count ≥ 1 ⟹ super-count ≥ 1.
func embeds(sup, subc []ChainOp) bool {
	emb := map[string]string{GroupChainVar: GroupChainVar}
	j := 0
	for _, so := range sup {
		found := false
		for j < len(subc) {
			qo := subc[j]
			j++
			if so.Path != nil && qo.Path != nil {
				if emb[so.Parent] == qo.Parent &&
					(so.Path.String() == qo.Path.String() || pathexpr.Subset(qo.Path, so.Path)) {
					emb[so.Out] = qo.Out
					found = true
					break
				}
			} else if so.Path == nil && qo.Path == nil {
				if mapped, ok := substCond(so.Cond, emb); ok && implies(qo.Cond, mapped) {
					found = true
					break
				}
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Condition mapping and implication.

// mapCond rewrites a super-plan condition into sub-plan names through
// the bijection; every referenced variable must already be mapped.
func (m *matcher) mapCond(c Cond) (Cond, bool) { return substCond(c, m.fwd) }

// renameCondVar rewrites one variable name, leaving others unchanged
// (the Rename pass-through; cannot fail).
func renameCondVar(c Cond, from, to string) Cond {
	out, _ := substCondWith(c, func(v string) (string, bool) {
		if v == from {
			return to, true
		}
		return v, true
	})
	return out
}

// substCond rebuilds c with variables substituted; a variable missing
// from the substitution map fails (the condition is not expressible in
// the target namespace).
func substCond(c Cond, sub map[string]string) (Cond, bool) {
	return substCondWith(c, func(v string) (string, bool) {
		nv, ok := sub[v]
		return nv, ok
	})
}

func substCondWith(c Cond, mapVar func(string) (string, bool)) (Cond, bool) {
	mapOperand := func(o Operand) (Operand, bool) {
		if o.Var == "" {
			return o, true
		}
		nv, ok := mapVar(o.Var)
		if !ok {
			return Operand{}, false
		}
		return Operand{Var: nv}, true
	}
	switch t := c.(type) {
	case *Cmp:
		l, ok := mapOperand(t.L)
		if !ok {
			return nil, false
		}
		r, ok := mapOperand(t.R)
		if !ok {
			return nil, false
		}
		return &Cmp{Op: t.Op, L: l, R: r}, true
	case *And:
		l, ok := substCondWith(t.L, mapVar)
		if !ok {
			return nil, false
		}
		r, ok := substCondWith(t.R, mapVar)
		if !ok {
			return nil, false
		}
		return &And{L: l, R: r}, true
	case *Or:
		l, ok := substCondWith(t.L, mapVar)
		if !ok {
			return nil, false
		}
		r, ok := substCondWith(t.R, mapVar)
		if !ok {
			return nil, false
		}
		return &Or{L: l, R: r}, true
	case *Not:
		n, ok := substCondWith(t.C, mapVar)
		if !ok {
			return nil, false
		}
		return &Not{C: n}, true
	case True:
		return True{}, true
	case *LabelMatch:
		nv, ok := mapVar(t.Var)
		if !ok {
			return nil, false
		}
		return &LabelMatch{Var: nv, Label: t.Label}, true
	}
	return nil, false
}

// conjuncts flattens nested conjunctions.
func conjuncts(c Cond) []Cond {
	if a, ok := c.(*And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	if _, ok := c.(True); ok {
		return nil
	}
	return []Cond{c}
}

// implies reports sub ⟹ super for two conditions over the same
// variables: every super conjunct is either structurally present among
// sub's conjuncts or interval-subsumed by one (Cmp over the same
// variable against literals). Conservative: anything else is "no".
func implies(sub, super Cond) bool {
	subCs := conjuncts(sub)
	for _, sc := range conjuncts(super) {
		if !impliedByAny(subCs, sc) {
			return false
		}
	}
	return true
}

func impliedByAny(cs []Cond, target Cond) bool {
	ts := target.String()
	for _, c := range cs {
		if c.String() == ts {
			return true
		}
		if cmpImplies(c, target) {
			return true
		}
	}
	return false
}

// normCmp normalizes a comparison to variable-on-the-left form.
func normCmp(c Cond) (*Cmp, bool) {
	t, ok := c.(*Cmp)
	if !ok {
		return nil, false
	}
	if t.L.Var != "" && t.R.Var == "" {
		return t, true
	}
	if t.L.Var == "" && t.R.Var != "" {
		flip := map[CmpOp]CmpOp{OpEq: OpEq, OpNeq: OpNeq,
			OpLt: OpGt, OpLe: OpGe, OpGt: OpLt, OpGe: OpLe}
		return &Cmp{Op: flip[t.Op], L: t.R, R: t.L}, true
	}
	return nil, false
}

// litOrderImplies checks the literal-vs-literal relation needed to
// chain two *ordering* comparisons. Eval's compare is numeric when both
// sides parse as floats and lexicographic otherwise; that hybrid order
// is not transitive across kinds (numeric "9" < "10" but lexicographic
// "9" > "10", and data like "1x" always compares lexicographically), so
// chaining x ⊙ a onto x ⊙ b is sound only when a and b are the same
// kind and the relation holds under both the numeric-aware order and
// plain string order — then it holds for numeric and non-numeric data
// alike.
func litOrderImplies(a, b string, rel func(int) bool) bool {
	_, ea := strconv.ParseFloat(a, 64)
	_, eb := strconv.ParseFloat(b, 64)
	if (ea == nil) != (eb == nil) {
		return false
	}
	return rel(Compare(a, b)) && rel(strings.Compare(a, b))
}

func le(c int) bool { return c <= 0 }
func lt(c int) bool { return c < 0 }
func ge(c int) bool { return c >= 0 }
func gt(c int) bool { return c > 0 }

// cmpImplies reports q ⟹ s for var-vs-literal comparisons over the same
// variable. An equality premise (x = a holds exactly when x's atom is
// the string a) substitutes a for x, so the engine's hybrid Compare
// decides directly; ordering-to-ordering chains go through
// litOrderImplies. Equality conclusions require the exact literal
// (Eval's = is string atom equality: "5.0" never implies equality with
// "5"), and inequality conclusions use that an atom equal to b compares
// as b does.
func cmpImplies(qc, sc Cond) bool {
	q, ok := normCmp(qc)
	if !ok {
		return false
	}
	s, ok := normCmp(sc)
	if !ok {
		return false
	}
	if q.L.Var != s.L.Var {
		return false
	}
	a, b := q.R.Lit, s.R.Lit
	switch s.Op {
	case OpLt: // x < b
		switch q.Op {
		case OpLt:
			return litOrderImplies(a, b, le)
		case OpLe:
			return litOrderImplies(a, b, lt)
		case OpEq:
			return Compare(a, b) < 0
		}
	case OpLe: // x <= b
		switch q.Op {
		case OpLt, OpLe:
			return litOrderImplies(a, b, le)
		case OpEq:
			return Compare(a, b) <= 0
		}
	case OpGt: // x > b
		switch q.Op {
		case OpGt:
			return litOrderImplies(a, b, ge)
		case OpGe:
			return litOrderImplies(a, b, gt)
		case OpEq:
			return Compare(a, b) > 0
		}
	case OpGe: // x >= b
		switch q.Op {
		case OpGt, OpGe:
			return litOrderImplies(a, b, ge)
		case OpEq:
			return Compare(a, b) >= 0
		}
	case OpEq: // x = b (string atom equality)
		return q.Op == OpEq && a == b
	case OpNeq: // x != b: sound when x's atom equal to b would violate q
		switch q.Op {
		case OpNeq:
			return a == b
		case OpEq:
			return a != b
		case OpLt:
			return Compare(a, b) <= 0 // atom(x)=b ⟹ compare(x,a)=compare(b,a) ≥ 0
		case OpLe:
			return Compare(a, b) < 0
		case OpGt:
			return Compare(a, b) >= 0
		case OpGe:
			return Compare(a, b) > 0
		}
	}
	return false
}
