package algebra

import (
	"sort"
	"strings"
	"testing"

	"mix/internal/pathexpr"
	"mix/internal/xmltree"
)

func TestHelperOpsSurface(t *testing.T) {
	src := &Source{URL: "s", Var: "X"}
	w := &WrapList{Input: src, Var: "X", Out: "L"}
	c := &Const{Input: w, Value: xmltree.Leaf("k"), Out: "C"}
	r := &Rename{Input: c, From: "C", To: "D"}

	if got := r.OutVars(); len(got) != 3 || got[2] != "D" {
		t.Fatalf("rename OutVars = %v", got)
	}
	if len(w.Inputs()) != 1 || len(c.Inputs()) != 1 || len(r.Inputs()) != 1 {
		t.Fatal("Inputs arity")
	}
	if err := Validate(r); err != nil {
		t.Fatal(err)
	}
	s := String(r)
	for _, want := range []string{"wrapList[$X → $L]", "const[", "rename[$C → $D]"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
	// Identity rename keeps the variable set.
	ident := &Rename{Input: src, From: "X", To: "X"}
	if err := Validate(ident); err != nil {
		t.Fatalf("identity rename: %v", err)
	}
	// Invalid helpers.
	bad := []Op{
		&WrapList{Input: src, Var: "nope", Out: "L"},
		&WrapList{Input: src, Var: "X", Out: "X"},
		&Const{Input: src, Out: "C"},
		&Const{Input: src, Value: xmltree.Leaf("k"), Out: "X"},
		&Rename{Input: src, From: "nope", To: "Y"},
	}
	for i, p := range bad {
		if err := Validate(p); err == nil {
			t.Errorf("bad helper %d validated", i)
		}
	}
}

func TestOutVarsAllOps(t *testing.T) {
	src := &Source{URL: "s", Var: "X"}
	src2 := &Source{URL: "t", Var: "Y"}
	cases := []struct {
		op   Op
		want []string
	}{
		{&GroupBy{Input: src, By: []string{"X"}, Var: "X", Out: "G"}, []string{"X", "G"}},
		{&Concatenate{Input: &Join{Left: src, Right: src2, Cond: True{}}, X: "X", Y: "Y", Out: "Z"},
			[]string{"X", "Y", "Z"}},
		{&CreateElement{Input: src, Label: LabelSpec{Const: "e"}, Children: "X", Out: "E"},
			[]string{"X", "E"}},
		{&OrderBy{Input: src, Keys: []string{"X"}}, []string{"X"}},
		{&Union{Left: src, Right: &Source{URL: "t", Var: "X"}}, []string{"X"}},
		{&Difference{Left: src, Right: &Source{URL: "t", Var: "X"}}, []string{"X"}},
		{&Distinct{Input: src}, []string{"X"}},
		{&Select{Input: src, Cond: True{}}, []string{"X"}},
	}
	for _, c := range cases {
		got := c.op.OutVars()
		a, b := append([]string{}, got...), append([]string{}, c.want...)
		sort.Strings(a)
		sort.Strings(b)
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Errorf("%T OutVars = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestRenameVarsFullPlan(t *testing.T) {
	// Build a plan touching every operator kind, rename all vars, and
	// check validity plus absence of old names.
	src := &Source{URL: "s", Var: "X"}
	gd := &GetDescendants{Input: src, Parent: "X", Path: pathexpr.MustParse("a"), Out: "Y"}
	sel := &Select{Input: gd, Cond: &And{
		L: Eq(V("Y"), Lit("1")),
		R: &Or{L: &Not{C: &LabelMatch{Var: "Y", Label: "a"}}, R: True{}},
	}}
	j := &Join{Left: sel, Right: &Source{URL: "t", Var: "Z"}, Cond: Eq(V("Y"), V("Z"))}
	grp := &GroupBy{Input: j, By: []string{"X"}, Var: "Y", Out: "G"}
	cc := &Concatenate{Input: grp, X: "X", Y: "G", Out: "CC"}
	ce := &CreateElement{Input: cc, Label: LabelSpec{Var: "X"}, Children: "CC", Out: "E"}
	ob := &OrderBy{Input: ce, Keys: []string{"E"}}
	pj := &Project{Input: ob, Keep: []string{"E", "X"}}
	un := &Union{Left: pj, Right: pj}
	df := &Difference{Left: un, Right: un}
	ds := &Distinct{Input: df}
	wl := &WrapList{Input: ds, Var: "E", Out: "W"}
	ko := &Const{Input: wl, Value: xmltree.Leaf("c"), Out: "K"}
	rn := &Rename{Input: ko, From: "K", To: "K2"}
	td := &TupleDestroy{Input: rn, Var: "E"}

	if err := Validate(td); err != nil {
		t.Fatalf("base plan invalid: %v", err)
	}
	renamed, err := RenameVars(td, func(v string) string { return "p~" + v })
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(renamed); err != nil {
		t.Fatalf("renamed plan invalid: %v", err)
	}
	s := String(renamed)
	if strings.Contains(s, "$X") && !strings.Contains(s, "$p~X") {
		t.Fatalf("old names survive:\n%s", s)
	}
	if !strings.Contains(s, "p~E") || !strings.Contains(s, "p~K2") {
		t.Fatalf("renaming incomplete:\n%s", s)
	}
	// Plan structure preserved.
	if OpCount(renamed) != OpCount(td) {
		t.Fatal("rename changed plan size")
	}
}

func TestCompareExported(t *testing.T) {
	if Compare("9", "10") >= 0 {
		t.Fatal("numeric compare")
	}
	if Compare("abc", "abd") >= 0 {
		t.Fatal("lexicographic compare")
	}
	if Compare("5", "5") != 0 {
		t.Fatal("equality")
	}
}

func TestIsSingletonCases(t *testing.T) {
	src := &Source{URL: "s", Var: "X"}
	singles := []Op{
		src,
		&GroupBy{Input: src, By: nil, Var: "X", Out: "G"},
		&Join{Left: src, Right: &Source{URL: "t", Var: "Y"}, Cond: True{}},
		&Distinct{Input: src},
		&Project{Input: src, Keep: []string{"X"}},
		&WrapList{Input: src, Var: "X", Out: "L"},
		&Const{Input: src, Value: xmltree.Leaf("v"), Out: "C"},
		&Rename{Input: src, From: "X", To: "Y"},
		&CreateElement{Input: src, Label: LabelSpec{Const: "e"}, Children: "X", Out: "E"},
	}
	for i, p := range singles {
		if !isSingleton(p) {
			t.Errorf("case %d (%T) should be singleton", i, p)
		}
	}
	multi := []Op{
		&GetDescendants{Input: src, Parent: "X", Path: pathexpr.MustParse("a"), Out: "Y"},
		&GroupBy{Input: src, By: []string{"X"}, Var: "X", Out: "G"},
		&Join{Left: src, Right: &Source{URL: "t", Var: "Y"}, Cond: Eq(V("X"), V("Y"))},
		&Union{Left: src, Right: &Source{URL: "t", Var: "X"}},
		&OrderBy{Input: src, Keys: []string{"X"}},
	}
	for i, p := range multi {
		if isSingleton(p) {
			t.Errorf("case %d (%T) should not be singleton", i, p)
		}
	}
}

func TestRewriteThroughHelperOps(t *testing.T) {
	// mapInputs must rebuild helper operators too: rewrite below them.
	src := &Source{URL: "s", Var: "X"}
	inner := &Select{Input: &Select{Input: src, Cond: Eq(V("X"), Lit("1"))},
		Cond: Eq(V("X"), Lit("2"))}
	plan := &Rename{
		Input: &Const{
			Input: &WrapList{Input: inner, Var: "X", Out: "L"},
			Value: xmltree.Leaf("c"), Out: "C",
		},
		From: "C", To: "D",
	}
	q := Rewrite(plan)
	// The cascaded selects below the helpers must have merged.
	merged := false
	Walk(q, func(op Op) {
		if s, ok := op.(*Select); ok {
			if _, ok := s.Cond.(*And); ok {
				merged = true
			}
		}
	})
	if !merged {
		t.Fatalf("selects below helper ops not merged:\n%s", String(q))
	}
	if err := Validate(q); err != nil {
		t.Fatal(err)
	}
}
