package algebra

import (
	"fmt"
	"strconv"
	"strings"

	"mix/internal/xmltree"
)

// Cond is a condition over a single (possibly joined) variable binding,
// used by Select and Join. Conditions compare the values bound to
// variables — for leaf-valued variables (the common case: a zip code, a
// price) comparison is on the atomic datum, numerically when both sides
// parse as numbers; for element-valued variables equality is structural
// tree equality and ordering compares text content.
type Cond interface {
	// Eval evaluates the condition against a binding accessor.
	Eval(b ValueGetter) (bool, error)
	// Vars returns the variables the condition references.
	Vars() []string
	// EquiKeys returns the variable pairs whose equality the condition
	// *implies*: every [2]string{a, b} is a conjunct a = b of the
	// condition, so any binding satisfying the condition has equal (in
	// the Eval sense) values for a and b. Engines use the pairs to
	// compile a Join into a hash equi-join; a nil result means the
	// condition has no top-level conjunctive variable equality and the
	// join must fall back to nested loops. The extraction is structural
	// and conservative: disjunctions, negations and literal comparisons
	// contribute nothing.
	EquiKeys() [][2]string
	fmt.Stringer
}

// ValueGetter provides the value bound to a variable. The lazy engine
// passes an accessor that materializes only the requested variable's
// subtree (typically a small leaf like a zip code); the eager engine
// passes a map lookup.
type ValueGetter interface {
	Value(name string) (*xmltree.Tree, error)
}

// Operand is a side of a comparison: a variable reference or a literal.
type Operand struct {
	Var string // non-empty: variable reference
	Lit string // literal value, when Var == ""
}

// V returns a variable operand.
func V(name string) Operand { return Operand{Var: name} }

// Lit returns a literal operand.
func Lit(s string) Operand { return Operand{Lit: s} }

func (o Operand) String() string {
	if o.Var != "" {
		return "$" + o.Var
	}
	return strconv.Quote(o.Lit)
}

func (o Operand) value(b ValueGetter) (*xmltree.Tree, error) {
	if o.Var != "" {
		return b.Value(o.Var)
	}
	return xmltree.Leaf(o.Lit), nil
}

// atom reduces a bound value to a comparable string: a leaf's label, or
// the text content for elements (so zip[91220] compares as "91220").
func atom(t *xmltree.Tree) string {
	if t == nil {
		return ""
	}
	if t.IsLeaf() {
		return t.Label
	}
	return t.TextContent()
}

// Compare orders two atomic values numerically when both parse as
// floats, lexicographically otherwise. It is the ordering used by
// comparisons and by orderBy.
func Compare(a, b string) int { return compare(a, b) }

// compare orders two values numerically when both parse as floats,
// lexicographically otherwise.
func compare(a, b string) int {
	fa, ea := strconv.ParseFloat(a, 64)
	fb, eb := strconv.ParseFloat(b, 64)
	if ea == nil && eb == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

// CmpOp is a comparison operator.
type CmpOp string

// Comparison operators.
const (
	OpEq  CmpOp = "="
	OpNeq CmpOp = "!="
	OpLt  CmpOp = "<"
	OpLe  CmpOp = "<="
	OpGt  CmpOp = ">"
	OpGe  CmpOp = ">="
)

// Cmp compares two operands.
type Cmp struct {
	Op   CmpOp
	L, R Operand
}

// Eq is shorthand for an equality comparison.
func Eq(l, r Operand) *Cmp { return &Cmp{Op: OpEq, L: l, R: r} }

// Eval implements Cond.
func (c *Cmp) Eval(b ValueGetter) (bool, error) {
	lv, err := c.L.value(b)
	if err != nil {
		return false, err
	}
	rv, err := c.R.value(b)
	if err != nil {
		return false, err
	}
	if c.Op == OpEq || c.Op == OpNeq {
		// Structural equality when both sides are elements; atomic
		// comparison otherwise (covers zip[91220] = "91220").
		var eq bool
		if !lv.IsLeaf() && !rv.IsLeaf() {
			eq = xmltree.Equal(lv, rv)
		} else {
			eq = atom(lv) == atom(rv)
		}
		if c.Op == OpEq {
			return eq, nil
		}
		return !eq, nil
	}
	cmp := compare(atom(lv), atom(rv))
	switch c.Op {
	case OpLt:
		return cmp < 0, nil
	case OpLe:
		return cmp <= 0, nil
	case OpGt:
		return cmp > 0, nil
	case OpGe:
		return cmp >= 0, nil
	}
	return false, fmt.Errorf("algebra: unknown comparison operator %q", c.Op)
}

// Vars implements Cond.
func (c *Cmp) Vars() []string {
	var out []string
	if c.L.Var != "" {
		out = append(out, c.L.Var)
	}
	if c.R.Var != "" {
		out = append(out, c.R.Var)
	}
	return out
}

// EquiKeys implements Cond: a variable-to-variable equality is the base
// case of the extraction.
func (c *Cmp) EquiKeys() [][2]string {
	if c.Op == OpEq && c.L.Var != "" && c.R.Var != "" {
		return [][2]string{{c.L.Var, c.R.Var}}
	}
	return nil
}

func (c *Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// And is conjunction.
type And struct{ L, R Cond }

// Eval implements Cond.
func (a *And) Eval(b ValueGetter) (bool, error) {
	l, err := a.L.Eval(b)
	if err != nil || !l {
		return false, err
	}
	return a.R.Eval(b)
}

// Vars implements Cond.
func (a *And) Vars() []string { return append(a.L.Vars(), a.R.Vars()...) }

// EquiKeys implements Cond: a conjunction implies the equalities implied
// by either side.
func (a *And) EquiKeys() [][2]string { return append(a.L.EquiKeys(), a.R.EquiKeys()...) }

func (a *And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is disjunction.
type Or struct{ L, R Cond }

// Eval implements Cond.
func (o *Or) Eval(b ValueGetter) (bool, error) {
	l, err := o.L.Eval(b)
	if err != nil || l {
		return l, err
	}
	return o.R.Eval(b)
}

// Vars implements Cond.
func (o *Or) Vars() []string { return append(o.L.Vars(), o.R.Vars()...) }

// EquiKeys implements Cond: a disjunction implies neither side's
// equalities.
func (o *Or) EquiKeys() [][2]string { return nil }

func (o *Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is negation.
type Not struct{ C Cond }

// Eval implements Cond.
func (n *Not) Eval(b ValueGetter) (bool, error) {
	v, err := n.C.Eval(b)
	return !v, err
}

// Vars implements Cond.
func (n *Not) Vars() []string { return n.C.Vars() }

// EquiKeys implements Cond.
func (n *Not) EquiKeys() [][2]string { return nil }

func (n *Not) String() string { return fmt.Sprintf("NOT %s", n.C) }

// True is the always-true condition (turns Join into a product).
type True struct{}

// Eval implements Cond.
func (True) Eval(ValueGetter) (bool, error) { return true, nil }

// Vars implements Cond.
func (True) Vars() []string { return nil }

// EquiKeys implements Cond.
func (True) EquiKeys() [][2]string { return nil }

func (True) String() string { return "true" }

// LabelMatch tests the *label* of the value bound to Var against a
// constant; it corresponds to the sibling-selection predicate σ of
// Section 2 and to XMAS tag tests.
type LabelMatch struct {
	Var   string
	Label string
}

// Eval implements Cond.
func (m *LabelMatch) Eval(b ValueGetter) (bool, error) {
	v, err := b.Value(m.Var)
	if err != nil {
		return false, err
	}
	return v != nil && v.Label == m.Label, nil
}

// Vars implements Cond.
func (m *LabelMatch) Vars() []string { return []string{m.Var} }

// EquiKeys implements Cond.
func (m *LabelMatch) EquiKeys() [][2]string { return nil }

func (m *LabelMatch) String() string { return fmt.Sprintf("label($%s) = %q", m.Var, m.Label) }
