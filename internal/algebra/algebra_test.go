package algebra

import (
	"strings"
	"testing"

	"mix/internal/pathexpr"
	"mix/internal/xmltree"
)

// fig4 builds the running-example plan of Fig. 4 (homes with local
// schools), without the final tupleDestroy/createElement(answer) pair
// when trimmed is set.
func fig4() Op {
	homes := &GetDescendants{
		Input:  &Source{URL: "homesSrc", Var: "root1"},
		Parent: "root1", Path: pathexpr.MustParse("homes.home"), Out: "H",
	}
	homesZip := &GetDescendants{Input: homes, Parent: "H", Path: pathexpr.MustParse("zip._"), Out: "V1"}
	schools := &GetDescendants{
		Input:  &Source{URL: "schoolsSrc", Var: "root2"},
		Parent: "root2", Path: pathexpr.MustParse("schools.school"), Out: "S",
	}
	schoolsZip := &GetDescendants{Input: schools, Parent: "S", Path: pathexpr.MustParse("zip._"), Out: "V2"}
	join := &Join{Left: homesZip, Right: schoolsZip, Cond: Eq(V("V1"), V("V2"))}
	grp := &GroupBy{Input: join, By: []string{"H"}, Var: "S", Out: "LSs"}
	conc := &Concatenate{Input: grp, X: "H", Y: "LSs", Out: "HLSs"}
	mh := &CreateElement{Input: conc, Label: LabelSpec{Const: "med_home"}, Children: "HLSs", Out: "MHs"}
	all := &GroupBy{Input: mh, By: nil, Var: "MHs", Out: "MHL"}
	ans := &CreateElement{Input: all, Label: LabelSpec{Const: "answer"}, Children: "MHL", Out: "A"}
	return &TupleDestroy{Input: ans, Var: "A"}
}

func TestValidateFig4(t *testing.T) {
	if err := Validate(fig4()); err != nil {
		t.Fatalf("fig4 should validate: %v", err)
	}
}

func TestOutVars(t *testing.T) {
	p := fig4()
	if len(p.OutVars()) != 0 {
		t.Fatalf("tupleDestroy OutVars = %v", p.OutVars())
	}
	src := &Source{URL: "s", Var: "X"}
	if got := src.OutVars(); len(got) != 1 || got[0] != "X" {
		t.Fatalf("source OutVars = %v", got)
	}
	gd := &GetDescendants{Input: src, Parent: "X", Path: pathexpr.MustParse("a"), Out: "Y"}
	if got := gd.OutVars(); len(got) != 2 || got[1] != "Y" {
		t.Fatalf("getDescendants OutVars = %v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	src := &Source{URL: "s", Var: "X"}
	cases := []struct {
		name string
		plan Op
	}{
		{"empty source", &Source{}},
		{"unknown parent", &GetDescendants{Input: src, Parent: "nope", Path: pathexpr.MustParse("a"), Out: "Y"}},
		{"nil path", &GetDescendants{Input: src, Parent: "X", Out: "Y"}},
		{"shadowing out", &GetDescendants{Input: src, Parent: "X", Path: pathexpr.MustParse("a"), Out: "X"}},
		{"select unknown var", &Select{Input: src, Cond: Eq(V("nope"), Lit("1"))}},
		{"join shared var", &Join{Left: src, Right: &Source{URL: "t", Var: "X"}, Cond: True{}}},
		{"groupBy unknown key", &GroupBy{Input: src, By: []string{"nope"}, Var: "X", Out: "G"}},
		{"groupBy unknown var", &GroupBy{Input: src, By: nil, Var: "nope", Out: "G"}},
		{"concat unknown", &Concatenate{Input: src, X: "X", Y: "nope", Out: "Z"}},
		{"createElement empty label", &CreateElement{Input: src, Children: "X", Out: "E"}},
		{"createElement unknown children", &CreateElement{Input: src, Label: LabelSpec{Const: "e"}, Children: "nope", Out: "E"}},
		{"orderBy no keys", &OrderBy{Input: src}},
		{"orderBy unknown key", &OrderBy{Input: src, Keys: []string{"nope"}}},
		{"project none", &Project{Input: src}},
		{"project unknown", &Project{Input: src, Keep: []string{"nope"}}},
		{"union mismatch", &Union{Left: src, Right: &Source{URL: "t", Var: "Y"}}},
		{"difference mismatch", &Difference{Left: src, Right: &Source{URL: "t", Var: "Y"}}},
		{"tupleDestroy unknown", &TupleDestroy{Input: src, Var: "nope"}},
	}
	for _, c := range cases {
		if err := Validate(c.plan); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestValidateOKVariants(t *testing.T) {
	src := &Source{URL: "s", Var: "X"}
	src2 := &Source{URL: "t", Var: "X"}
	ok := []Op{
		&Union{Left: src, Right: src2},
		&Difference{Left: src, Right: src2},
		&Distinct{Input: src},
		&Select{Input: src, Cond: &LabelMatch{Var: "X", Label: "a"}},
		&OrderBy{Input: src, Keys: []string{"X"}},
		&Project{Input: &Join{Left: src, Right: &Source{URL: "t", Var: "Y"}, Cond: True{}}, Keep: []string{"Y"}},
		&GroupBy{Input: src, By: nil, Var: "X", Out: "G"},
	}
	for i, p := range ok {
		if err := Validate(p); err != nil {
			t.Errorf("plan %d should validate: %v", i, err)
		}
	}
}

func TestPlanString(t *testing.T) {
	s := String(fig4())
	for _, want := range []string{"tupleDestroy", "createElement", "groupBy", "join", "getDescendants", "source[homesSrc"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
	// Indentation shows nesting.
	if !strings.Contains(s, "\n  createElement") {
		t.Errorf("plan string not indented:\n%s", s)
	}
}

func TestSources(t *testing.T) {
	got := Sources(fig4())
	if len(got) != 2 || got[0] != "homesSrc" || got[1] != "schoolsSrc" {
		t.Fatalf("Sources = %v", got)
	}
}

type mapBinding map[string]*xmltree.Tree

func (m mapBinding) Value(name string) (*xmltree.Tree, error) { return m[name], nil }

func TestCondEval(t *testing.T) {
	b := mapBinding{
		"V1": xmltree.Leaf("91220"),
		"V2": xmltree.Leaf("91220"),
		"V3": xmltree.Leaf("91223"),
		"Z":  xmltree.Text("zip", "91220"),
		"P":  xmltree.Leaf("9.5"),
	}
	cases := []struct {
		cond Cond
		want bool
	}{
		{Eq(V("V1"), V("V2")), true},
		{Eq(V("V1"), V("V3")), false},
		{Eq(V("V1"), Lit("91220")), true},
		{Eq(V("Z"), Lit("91220")), true}, // element vs literal: text content
		{&Cmp{Op: OpNeq, L: V("V1"), R: V("V3")}, true},
		{&Cmp{Op: OpLt, L: V("V1"), R: V("V3")}, true},
		{&Cmp{Op: OpLt, L: V("P"), R: Lit("10")}, true}, // numeric: 9.5 < 10
		{&Cmp{Op: OpGe, L: V("V3"), R: V("V1")}, true},
		{&Cmp{Op: OpGt, L: V("V1"), R: V("V3")}, false},
		{&Cmp{Op: OpLe, L: V("V1"), R: V("V1")}, true},
		{&And{L: Eq(V("V1"), V("V2")), R: Eq(V("V1"), V("V3"))}, false},
		{&Or{L: Eq(V("V1"), V("V3")), R: Eq(V("V1"), V("V2"))}, true},
		{&Not{C: Eq(V("V1"), V("V3"))}, true},
		{True{}, true},
		{&LabelMatch{Var: "Z", Label: "zip"}, true},
		{&LabelMatch{Var: "Z", Label: "addr"}, false},
	}
	for _, c := range cases {
		got, err := c.cond.Eval(b)
		if err != nil {
			t.Errorf("%s: %v", c.cond, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.cond, got, c.want)
		}
	}
}

func TestCondStructuralEquality(t *testing.T) {
	b := mapBinding{
		"A": xmltree.Elem("home", xmltree.Text("zip", "1")),
		"B": xmltree.Elem("home", xmltree.Text("zip", "1")),
		"C": xmltree.Elem("home", xmltree.Text("zip", "2")),
	}
	if ok, _ := Eq(V("A"), V("B")).Eval(b); !ok {
		t.Fatal("structurally equal elements should compare equal")
	}
	if ok, _ := Eq(V("A"), V("C")).Eval(b); ok {
		t.Fatal("different elements should not compare equal")
	}
}

func TestCondVarsAndString(t *testing.T) {
	c := &And{L: Eq(V("A"), Lit("x")), R: &Or{L: &Not{C: True{}}, R: &LabelMatch{Var: "B", Label: "t"}}}
	vars := c.Vars()
	if len(vars) != 2 || vars[0] != "A" || vars[1] != "B" {
		t.Fatalf("Vars = %v", vars)
	}
	if s := c.String(); !strings.Contains(s, "AND") || !strings.Contains(s, "$A") {
		t.Fatalf("String = %q", s)
	}
}

func TestClassify(t *testing.T) {
	src := &Source{URL: "s", Var: "X"}
	src2 := &Source{URL: "t", Var: "Y"}

	// qconc: concatenation of two sources is bounded browsable.
	qconc := &CreateElement{
		Input: &Concatenate{
			Input: &Join{Left: src, Right: src2, Cond: True{}},
			X:     "X", Y: "Y", Out: "Z",
		},
		Label: LabelSpec{Const: "r"}, Children: "Z", Out: "E",
	}
	// A product of two singleton sources involves no scanning: the
	// whole restructuring is bounded browsable (Example 1's q_conc).
	cls, _ := Classify(qconc, false)
	if cls != BoundedBrowsable {
		t.Fatalf("qconc-with-product class = %v", cls)
	}
	// A real join condition loses the bound.
	realJoin := &Join{Left: src, Right: src2, Cond: Eq(V("X"), V("Y"))}
	if cls, _ := Classify(realJoin, false); cls != Browsable {
		t.Fatalf("real join class = %v", cls)
	}
	// Grouping by {} is bounded; real grouping is not.
	g0 := &GroupBy{Input: src, By: nil, Var: "X", Out: "G"}
	if cls, _ := Classify(g0, false); cls != BoundedBrowsable {
		t.Fatalf("groupBy{} class = %v", cls)
	}
	g1 := &GroupBy{Input: realJoin, By: []string{"X"}, Var: "Y", Out: "G"}
	if cls, _ := Classify(g1, false); cls != Browsable {
		t.Fatalf("groupBy{X} class = %v", cls)
	}
	// Wildcard-chain paths mirror navigation: bounded without select.
	gdw := &GetDescendants{Input: src, Parent: "X", Path: pathexpr.MustParse("_._"), Out: "W"}
	if cls, _ := Classify(gdw, false); cls != BoundedBrowsable {
		t.Fatalf("wildcard-chain getDescendants class = %v", cls)
	}

	// Pure restructuring without join: bounded.
	pure := &CreateElement{Input: src, Label: LabelSpec{Const: "r"}, Children: "X", Out: "E"}
	if cls, culprit := Classify(pure, false); cls != BoundedBrowsable || culprit != nil {
		t.Fatalf("pure restructuring = %v (culprit %v)", cls, culprit)
	}

	// Selection: browsable; with native select(σ) and a label test: bounded.
	sel := &Select{Input: src, Cond: &LabelMatch{Var: "X", Label: "a"}}
	if cls, _ := Classify(sel, false); cls != Browsable {
		t.Fatalf("selection without native select = %v", cls)
	}
	if cls, _ := Classify(sel, true); cls != BoundedBrowsable {
		t.Fatalf("selection with native select = %v", cls)
	}
	// Value selections stay browsable even with native select.
	vsel := &Select{Input: src, Cond: Eq(V("X"), Lit("a"))}
	if cls, _ := Classify(vsel, true); cls != Browsable {
		t.Fatalf("value selection with native select = %v", cls)
	}

	// orderBy: unbrowsable, and it is the culprit.
	ob := &OrderBy{Input: sel, Keys: []string{"X"}}
	cls, culprit := Classify(ob, false)
	if cls != Unbrowsable || culprit != Op(ob) {
		t.Fatalf("orderBy = %v (culprit %T)", cls, culprit)
	}

	// difference: unbrowsable.
	diff := &Difference{Left: src, Right: &Source{URL: "t", Var: "X"}}
	if cls, _ := Classify(diff, false); cls != Unbrowsable {
		t.Fatalf("difference = %v", cls)
	}

	// getDescendants: recursive path is browsable even with select.
	gdr := &GetDescendants{Input: src, Parent: "X", Path: pathexpr.MustParse("a*.x"), Out: "Y"}
	if cls, _ := Classify(gdr, true); cls != Browsable {
		t.Fatalf("recursive getDescendants = %v", cls)
	}
	gdf := &GetDescendants{Input: src, Parent: "X", Path: pathexpr.MustParse("a.b"), Out: "Y"}
	if cls, _ := Classify(gdf, true); cls != BoundedBrowsable {
		t.Fatalf("fixed getDescendants with native select = %v", cls)
	}
	if cls, _ := Classify(gdf, false); cls != Browsable {
		t.Fatalf("fixed getDescendants without native select = %v", cls)
	}

	// Fig. 4 plan overall: browsable (join/groupBy), not unbrowsable.
	if cls, _ := Classify(fig4(), false); cls != Browsable {
		t.Fatalf("fig4 = %v", cls)
	}

	if BoundedBrowsable.String() == "" || Browsable.String() == "" || Unbrowsable.String() == "" ||
		Browsability(99).String() != "unknown" {
		t.Fatal("Browsability.String")
	}
}

func TestRewriteSelectPushdownThroughJoin(t *testing.T) {
	l := &Source{URL: "s", Var: "X"}
	r := &Source{URL: "t", Var: "Y"}
	p := &Select{
		Input: &Join{Left: l, Right: r, Cond: Eq(V("X"), V("Y"))},
		Cond:  Eq(V("X"), Lit("a")),
	}
	q := Rewrite(p)
	j, ok := q.(*Join)
	if !ok {
		t.Fatalf("want join at root, got %T:\n%s", q, String(q))
	}
	if _, ok := j.Left.(*Select); !ok {
		t.Fatalf("selection not pushed to left input:\n%s", String(q))
	}
	if err := Validate(q); err != nil {
		t.Fatalf("rewritten plan invalid: %v", err)
	}

	// Right-side condition pushes right.
	p2 := &Select{
		Input: &Join{Left: l, Right: r, Cond: True{}},
		Cond:  Eq(V("Y"), Lit("b")),
	}
	j2 := Rewrite(p2).(*Join)
	if _, ok := j2.Right.(*Select); !ok {
		t.Fatalf("selection not pushed to right input:\n%s", String(j2))
	}

	// Cross-side condition must not push.
	p3 := &Select{
		Input: &Join{Left: l, Right: r, Cond: True{}},
		Cond:  Eq(V("X"), V("Y")),
	}
	if _, ok := Rewrite(p3).(*Select); !ok {
		t.Fatalf("cross-side selection must stay above join:\n%s", String(Rewrite(p3)))
	}
}

func TestRewriteSelectPushdownThroughGetDescendants(t *testing.T) {
	src := &Source{URL: "s", Var: "X"}
	gd := &GetDescendants{Input: src, Parent: "X", Path: pathexpr.MustParse("a"), Out: "Y"}
	// Condition on X only: pushes below.
	p := &Select{Input: gd, Cond: &LabelMatch{Var: "X", Label: "r"}}
	q := Rewrite(p)
	if _, ok := q.(*GetDescendants); !ok {
		t.Fatalf("selection not pushed below getDescendants: %T", q)
	}
	// Condition on Y: stays.
	p2 := &Select{Input: gd, Cond: &LabelMatch{Var: "Y", Label: "r"}}
	if _, ok := Rewrite(p2).(*Select); !ok {
		t.Fatal("selection on new var must not push")
	}
}

func TestRewriteMergeSelects(t *testing.T) {
	src := &Source{URL: "s", Var: "X"}
	p := &Select{
		Input: &Select{Input: src, Cond: Eq(V("X"), Lit("a"))},
		Cond:  &LabelMatch{Var: "X", Label: "t"},
	}
	q := Rewrite(p)
	s, ok := q.(*Select)
	if !ok {
		t.Fatalf("want single select, got %T", q)
	}
	if _, ok := s.Cond.(*And); !ok {
		t.Fatalf("want AND condition, got %T", s.Cond)
	}
	if _, ok := s.Input.(*Source); !ok {
		t.Fatalf("cascade not fully merged: %T", s.Input)
	}
}

func TestRewriteOrderByCollapse(t *testing.T) {
	src := &Source{URL: "s", Var: "X"}
	p := &OrderBy{Input: &OrderBy{Input: src, Keys: []string{"X"}}, Keys: []string{"X"}}
	q := Rewrite(p)
	ob, ok := q.(*OrderBy)
	if !ok {
		t.Fatalf("want orderBy, got %T", q)
	}
	if _, ok := ob.Input.(*Source); !ok {
		t.Fatal("inner orderBy not eliminated")
	}
}

func TestRewriteProjectIdentity(t *testing.T) {
	src := &Source{URL: "s", Var: "X"}
	p := &Project{Input: src, Keep: []string{"X"}}
	if _, ok := Rewrite(p).(*Source); !ok {
		t.Fatal("identity project not removed")
	}
	j := &Join{Left: src, Right: &Source{URL: "t", Var: "Y"}, Cond: True{}}
	p2 := &Project{Input: j, Keep: []string{"X"}}
	if _, ok := Rewrite(p2).(*Project); !ok {
		t.Fatal("real project must stay")
	}
}

func TestRewritePreservesUntouchedPlans(t *testing.T) {
	p := fig4()
	q := Rewrite(p)
	if OpCount(p) != OpCount(q) {
		t.Fatalf("fig4 rewrite changed op count %d → %d", OpCount(p), OpCount(q))
	}
	if err := Validate(q); err != nil {
		t.Fatal(err)
	}
}

func TestOpCount(t *testing.T) {
	if n := OpCount(fig4()); n != 13 {
		t.Fatalf("OpCount(fig4) = %d, want 13", n)
	}
}

func TestRewriteTrivialSelect(t *testing.T) {
	src := &Source{URL: "s", Var: "X"}
	if _, ok := Rewrite(&Select{Input: src, Cond: True{}}).(*Source); !ok {
		t.Fatal("select(true) not eliminated")
	}
	s := Rewrite(&Select{Input: src, Cond: &And{L: True{}, R: Eq(V("X"), Lit("1"))}})
	sel, ok := s.(*Select)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if _, ok := sel.Cond.(*Cmp); !ok {
		t.Fatalf("AND with true not simplified: %v", sel.Cond)
	}
}

func TestRewriteDistinctIdempotent(t *testing.T) {
	src := &Source{URL: "s", Var: "X"}
	q := Rewrite(&Distinct{Input: &Distinct{Input: src}})
	d, ok := q.(*Distinct)
	if !ok {
		t.Fatalf("got %T", q)
	}
	if _, ok := d.Input.(*Source); !ok {
		t.Fatal("nested distinct not collapsed")
	}
}

func TestRewriteProjectPushdownThroughJoin(t *testing.T) {
	l := &GetDescendants{Input: &Source{URL: "s", Var: "R1"},
		Parent: "R1", Path: pathexpr.MustParse("a"), Out: "X"}
	lk := &GetDescendants{Input: l, Parent: "X",
		Path: pathexpr.MustParse("k._"), Out: "KX"}
	r := &GetDescendants{Input: &Source{URL: "t", Var: "R2"},
		Parent: "R2", Path: pathexpr.MustParse("b"), Out: "Y"}
	rk := &GetDescendants{Input: r, Parent: "Y",
		Path: pathexpr.MustParse("k._"), Out: "KY"}
	j := &Join{Left: lk, Right: rk, Cond: Eq(V("KX"), V("KY"))}
	p := &Project{Input: j, Keep: []string{"X"}}

	q := Rewrite(p)
	if err := Validate(q); err != nil {
		t.Fatalf("rewritten invalid: %v\n%s", err, String(q))
	}
	// The projection must have reached both join inputs.
	pushedLeft, pushedRight := false, false
	Walk(q, func(op Op) {
		if pr, ok := op.(*Project); ok {
			if _, ok := pr.Input.(*GetDescendants); ok {
				set := varSet(pr.Keep)
				if set["KX"] && set["X"] && len(pr.Keep) == 2 {
					pushedLeft = true
				}
				if set["KY"] && len(pr.Keep) == 1 {
					pushedRight = true
				}
			}
		}
	})
	if !pushedLeft || !pushedRight {
		t.Fatalf("projection not split across the join:\n%s", String(q))
	}
	if got := q.OutVars(); len(got) != 1 || got[0] != "X" {
		t.Fatalf("output vars changed: %v", got)
	}
}
