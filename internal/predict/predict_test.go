package predict

import (
	"fmt"
	"sync"
	"testing"
)

func key(gen uint64) Key {
	return Key{Generation: gen, Registry: 1, Name: "homes", Fingerprint: "fp"}
}

func TestPredictNeedsSupport(t *testing.T) {
	m := NewModel(0)
	k := key(1)
	if _, _, _, ok := m.Predict(k, 0); ok {
		t.Fatal("empty model predicted")
	}
	m.Observe(k, -1, 0)
	if _, _, _, ok := m.Predict(k, 0); ok {
		t.Fatal("one observation cleared MinSupport")
	}
	m.Observe(k, 0, 1)
	next, _, conf, ok := m.Predict(k, 1)
	if !ok || next != 2 {
		t.Fatalf("Predict = %d, %v; want 2, true", next, ok)
	}
	if conf != 1.0 {
		t.Fatalf("conf = %v; want 1.0", conf)
	}
}

func TestDeltaGeneralizesAcrossPositions(t *testing.T) {
	// Two advances observed near the start of the answer must predict an
	// advance anywhere: delta space, not (from, to) pairs.
	m := NewModel(0)
	k := key(1)
	m.Observe(k, -1, 0)
	m.Observe(k, 0, 1)
	next, _, _, ok := m.Predict(k, 40)
	if !ok || next != 41 {
		t.Fatalf("Predict(40) = %d, %v; want 41, true", next, ok)
	}
}

func TestConfidenceDilutedByMixedDeltas(t *testing.T) {
	m := NewModel(0)
	k := key(1)
	m.Observe(k, 0, 1)
	m.Observe(k, 1, 2)
	m.Observe(k, 2, 0) // a jump back
	next, _, conf, ok := m.Predict(k, 2)
	if !ok || next != 3 {
		t.Fatalf("Predict = %d, %v; want 3, true", next, ok)
	}
	if conf <= 0.5 || conf >= 0.7 {
		t.Fatalf("conf = %v; want 2/3", conf)
	}
}

func TestNegativePredictionSuppressed(t *testing.T) {
	m := NewModel(0)
	k := key(1)
	m.Observe(k, 3, 1)
	m.Observe(k, 5, 3)
	if next, _, _, ok := m.Predict(k, 1); ok {
		t.Fatalf("Predict(1) = %d, true; a negative region index must not predict", next)
	}
	// From a position where cur+delta stays valid, the −2 pattern holds.
	if next, _, _, ok := m.Predict(k, 6); !ok || next != 4 {
		t.Fatalf("Predict(6) = %d, %v; want 4, true", next, ok)
	}
}

func TestOverflowDeltasNeverPredict(t *testing.T) {
	m := NewModel(0)
	k := key(1)
	m.Observe(k, 0, 100)
	m.Observe(k, 100, 200)
	if next, _, _, ok := m.Predict(k, 0); ok {
		t.Fatalf("Predict = %d, true; overflow buckets must not yield a concrete region", next)
	}
	// But they dilute a real pattern's confidence.
	m.Observe(k, 0, 1)
	m.Observe(k, 1, 2)
	_, _, conf, ok := m.Predict(k, 2)
	if !ok || conf != 0.5 {
		t.Fatalf("conf = %v, %v; want 0.5, true", conf, ok)
	}
}

func TestDrillBit(t *testing.T) {
	m := NewModel(0)
	k := key(1)
	m.Observe(k, -1, 0)
	m.Observe(k, 0, 1)
	m.ObserveDrill(k)
	m.ObserveDrill(k)
	if _, deep, _, ok := m.Predict(k, 1); !ok || !deep {
		t.Fatalf("deep = %v, ok = %v; drilling sessions should predict deep", deep, ok)
	}
	mg := NewModel(0)
	mg.Observe(k, -1, 0)
	mg.Observe(k, 0, 1)
	if _, deep, _, ok := mg.Predict(k, 1); !ok || deep {
		t.Fatalf("deep = %v, ok = %v; glance sessions should predict shallow", deep, ok)
	}
}

func TestEvictBelow(t *testing.T) {
	m := NewModel(0)
	old, cur := key(1), key(2)
	m.Observe(old, 0, 1)
	m.Observe(old, 1, 2)
	m.Observe(cur, 0, 1)
	m.Observe(cur, 1, 2)
	m.EvictBelow(2)
	if _, _, _, ok := m.Predict(old, 1); ok {
		t.Fatal("stale-generation table survived EvictBelow")
	}
	if _, _, _, ok := m.Predict(cur, 1); !ok {
		t.Fatal("current-generation table evicted")
	}
	if s := m.Stats(); s.Keys != 1 || s.Evicted != 1 {
		t.Fatalf("Stats = %+v; want Keys 1, Evicted 1", s)
	}
}

func TestBoundedTables(t *testing.T) {
	m := NewModel(4)
	for i := 0; i < 10; i++ {
		k := Key{Generation: 1, Name: fmt.Sprintf("v%d", i)}
		m.Observe(k, 0, 1)
	}
	if s := m.Stats(); s.Keys != 4 || s.Evicted != 6 {
		t.Fatalf("Stats = %+v; want Keys 4, Evicted 6", s)
	}
	// The newest keys survive.
	if _, _, _, ok := m.Predict(Key{Generation: 1, Name: "v0"}, 0); ok {
		t.Fatal("oldest key survived bounding")
	}
}

func TestDecayBoundsCounters(t *testing.T) {
	m := NewModel(0)
	k := key(1)
	for i := 0; i < 3*decayCap; i++ {
		m.Observe(k, 0, 1)
	}
	t0 := m.lookup(k, false)
	if tot := t0.total.Load(); tot > decayCap+1 {
		t.Fatalf("total = %d after decay; want <= %d", tot, decayCap+1)
	}
	if next, _, conf, ok := m.Predict(k, 5); !ok || next != 6 || conf < 0.99 {
		t.Fatalf("post-decay Predict = %d, conf %v, ok %v", next, conf, ok)
	}
}

func TestConcurrentObservePredict(t *testing.T) {
	m := NewModel(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := Key{Generation: 1, Name: fmt.Sprintf("v%d", g%4)}
			for i := 0; i < 2000; i++ {
				m.Observe(k, i%7, i%7+1)
				m.Predict(k, i%7)
				if i%100 == 0 {
					m.ObserveDrill(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if s := m.Stats(); s.Observed != 16000 {
		t.Fatalf("Observed = %d; want 16000", s.Observed)
	}
	for g := 0; g < 4; g++ {
		k := Key{Generation: 1, Name: fmt.Sprintf("v%d", g)}
		if next, _, _, ok := m.Predict(k, 3); !ok || next != 4 {
			t.Fatalf("Predict(v%d, 3) = %d, %v; want 4, true", g, next, ok)
		}
	}
}
