// Package predict implements the online navigation-pattern model behind
// speculative region prefetch: a first-order successor model over the
// *top-level regions* of virtual answer documents.
//
// A region is one top-level subtree of an answer document, identified by
// its child index under the answer root (the med_home elements of the
// running example, the book elements of allbooks, …). Sessions reveal
// their intent region by region: a deep-drill client engages region 0,
// then 1, then 2; a glance client samples a few labels and leaves. The
// model counts the observed transitions between engaged regions and,
// when one successor dominates, predicts where the client goes next —
// the input the server's speculative drain worker warms ahead of demand.
//
// # Delta space
//
// Transitions are counted in *delta* space — the signed distance
// to−from between consecutively engaged region indices — rather than as
// (from, to) pairs. This is what makes the model plan-relative and lets
// it generalize across sessions and positions: the dominant pattern of
// a sequential drill is the single delta +1 regardless of how deep into
// the answer the session is, so two observed advances anywhere teach
// the model to predict the next advance everywhere. Deltas beyond
// ±maxDelta fold into overflow buckets that dilute confidence without
// ever producing a (meaningless) concrete prediction.
//
// # Keying and lifetime
//
// Tables are keyed exactly like region-cache entries — (generation,
// registry version, view name, canonical plan fingerprint) — so a
// prediction can only ever warm the entry the observing sessions read,
// and an invalidation epoch bump orphans the learned structure along
// with the cached regions (EvictBelow). Tables are bounded (oldest-key
// eviction) and individually decayed (counts halve past a cap), so the
// model can never pin stale structure or grow without bound.
//
// Counting is lock-free: transition counters are atomics, and the table
// map is guarded by an RWMutex taken only to look up or insert a table.
package predict

import (
	"sync"
	"sync/atomic"
)

// Key identifies one successor table: the same four components as a
// region-cache key, so model state and cached regions live and die
// together.
type Key struct {
	Generation  uint64
	Registry    uint64
	Name        string
	Fingerprint string
}

const (
	// maxDelta is the largest region-index step tracked exactly;
	// |delta| > maxDelta folds into an overflow bucket.
	maxDelta = 4
	// numDeltas is the number of exact delta buckets (−maxDelta…+maxDelta).
	numDeltas = 2*maxDelta + 1
	idxUnder  = numDeltas     // delta < −maxDelta
	idxOver   = numDeltas + 1 // delta > +maxDelta
	nBuckets  = numDeltas + 2

	// MinSupport is the least number of observed transitions before a
	// table predicts at all: one observation proves nothing about a
	// pattern, two consecutive advances already do.
	MinSupport = 2

	// decayCap triggers a halving decay of a table's counters, so a
	// long-lived table tracks the *recent* navigation mix instead of
	// averaging over its whole history.
	decayCap = 1 << 12

	// DefaultMaxKeys bounds the number of tables a model retains.
	DefaultMaxKeys = 1024
)

// table is the per-key successor state. Counters are atomics so
// observation never takes a lock; decay (rare) holds decayMu so only
// one goroutine halves at a time. Counts read during a decay are
// approximate, which is fine — the model is a heuristic, and
// mispredictions cost only a bounded speculative drain.
type table struct {
	counts [nBuckets]atomic.Int64
	total  atomic.Int64
	// drills counts engagements that descended below the region's top
	// element; engages counts all engagements. Their ratio decides
	// whether a predicted region is drained deep (full subtree) or
	// shallow (the subtree's top two levels).
	drills  atomic.Int64
	engages atomic.Int64

	decayMu sync.Mutex
}

func bucket(delta int) int {
	switch {
	case delta < -maxDelta:
		return idxUnder
	case delta > maxDelta:
		return idxOver
	default:
		return delta + maxDelta
	}
}

// decay halves every counter once the table's total passes decayCap.
func (t *table) decay() {
	t.decayMu.Lock()
	defer t.decayMu.Unlock()
	if t.total.Load() <= decayCap {
		return // another goroutine already decayed
	}
	var total int64
	for i := range t.counts {
		h := t.counts[i].Load() / 2
		t.counts[i].Store(h)
		total += h
	}
	t.total.Store(total)
	t.drills.Store(t.drills.Load() / 2)
	t.engages.Store(t.engages.Load() / 2)
}

// Model is the bounded collection of per-key successor tables. The zero
// value is not usable; create with NewModel.
type Model struct {
	maxKeys int

	mu    sync.RWMutex
	tabs  map[Key]*table
	order []Key // insertion order, for oldest-first bounding

	observed  atomic.Int64
	predicted atomic.Int64
	evicted   atomic.Int64
}

// NewModel returns an empty model retaining at most maxKeys tables
// (DefaultMaxKeys when <= 0).
func NewModel(maxKeys int) *Model {
	if maxKeys <= 0 {
		maxKeys = DefaultMaxKeys
	}
	return &Model{maxKeys: maxKeys, tabs: map[Key]*table{}}
}

// lookup returns the table for k, creating (and bounding) on demand.
func (m *Model) lookup(k Key, create bool) *table {
	m.mu.RLock()
	t := m.tabs[k]
	m.mu.RUnlock()
	if t != nil || !create {
		return t
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if t = m.tabs[k]; t != nil {
		return t
	}
	if len(m.tabs) >= m.maxKeys {
		// Evict the oldest table: navigation patterns are recency-
		// weighted anyway, and the oldest key is the likeliest to
		// belong to a view nobody navigates any more.
		old := m.order[0]
		m.order = m.order[1:]
		delete(m.tabs, old)
		m.evicted.Add(1)
	}
	t = &table{}
	m.tabs[k] = t
	m.order = append(m.order, k)
	return t
}

// Observe records that a session engaged region `to` after last engaging
// region `from` (use from = −1 for the answer root, i.e. the session's
// first engagement — it lands in the same +1 bucket as a sequential
// advance into region 0, deliberately reinforcing the scan pattern).
func (m *Model) Observe(k Key, from, to int) {
	t := m.lookup(k, true)
	t.counts[bucket(to-from)].Add(1)
	t.engages.Add(1)
	if t.total.Add(1) > decayCap {
		t.decay()
	}
	m.observed.Add(1)
}

// ObserveDrill records that a session descended below the top element of
// its engaged region — the signal that predictions for this key should
// be drained deep (whole subtree) rather than shallow.
func (m *Model) ObserveDrill(k Key) {
	if t := m.lookup(k, false); t != nil {
		t.drills.Add(1)
	}
}

// Predict returns the most likely next region after cur, whether it
// should be drained deep, and the confidence (dominant-bucket share of
// all observed transitions). ok is false when the table has fewer than
// MinSupport observations, when the dominant delta is 0 (the session is
// already there), or when the predicted index would be negative.
// Callers compare conf against their own threshold.
func (m *Model) Predict(k Key, cur int) (next int, deep bool, conf float64, ok bool) {
	t := m.lookup(k, false)
	if t == nil {
		return 0, false, 0, false
	}
	total := t.total.Load()
	if total < MinSupport {
		return 0, false, 0, false
	}
	best, bestDelta := int64(0), 0
	for i := 0; i < numDeltas; i++ {
		d := i - maxDelta
		if d == 0 {
			continue // a self-transition predicts nothing new
		}
		if c := t.counts[i].Load(); c > best {
			best, bestDelta = c, d
		}
	}
	next = cur + bestDelta
	if best == 0 || next < 0 {
		return 0, false, 0, false
	}
	m.predicted.Add(1)
	deep = 2*t.drills.Load() >= t.engages.Load()
	return next, deep, float64(best) / float64(total), true
}

// EvictBelow drops every table whose generation is below gen — the
// model's share of a BumpRegistry/Invalidate epoch bump.
func (m *Model) EvictBelow(gen uint64) {
	m.mu.Lock()
	kept := m.order[:0]
	for _, k := range m.order {
		if k.Generation < gen {
			delete(m.tabs, k)
			m.evicted.Add(1)
		} else {
			kept = append(kept, k)
		}
	}
	m.order = kept
	m.mu.Unlock()
}

// Stats is a point-in-time snapshot of model size and activity.
type Stats struct {
	Keys        int   `json:"keys"`
	Observed    int64 `json:"observed"`
	Predictions int64 `json:"predictions"`
	Evicted     int64 `json:"evicted"`
}

// Stats returns current totals.
func (m *Model) Stats() Stats {
	m.mu.RLock()
	keys := len(m.tabs)
	m.mu.RUnlock()
	return Stats{
		Keys:        keys,
		Observed:    m.observed.Load(),
		Predictions: m.predicted.Load(),
		Evicted:     m.evicted.Load(),
	}
}
