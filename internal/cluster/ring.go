// Package cluster turns a set of mixd processes into a sharded mediator
// fleet: a consistent-hash ring routes each session to the node that
// owns its (view name, canonical plan fingerprint) key, sessions landing
// elsewhere are proxied or redirected to the owner, and every node's
// in-process region cache (L1) is backed by a peer-fill L2 protocol so
// a region explored anywhere in the fleet is fetched from its owner
// before any node falls back to sources. Membership is static (the
// -peers flag); periodic health checks with timeout and backoff mark
// peers down, and a node whose peers are all down degrades to exactly
// the single-node behavior — it serves everything locally from its own
// sources.
//
// The design follows LiquidXML's adaptive content redistribution
// (PAPERS.md): hot view regions accumulate at the nodes whose clients
// navigate them, because routing sends those clients — and the L2
// flusher sends regions explored during degraded or local-mode serving
// — to the key's owner.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultReplicas is the default number of virtual nodes per member: a
// few dozen vnodes keeps the expected imbalance between members within
// a few percent while the ring stays small enough to rebuild instantly.
const DefaultReplicas = 64

// RouteKey renders the session routing key for a query: the region
// cache's (view name, canonical plan fingerprint) identity, NUL-joined
// so distinct pairs can never collide textually.
func RouteKey(name, fingerprint string) string {
	return name + "\x00" + fingerprint
}

// Ring is an immutable consistent-hash ring over the fleet's member
// addresses. Each member is placed at Replicas pseudo-random points;
// a key is owned by the member of the first point at or clockwise of
// the key's hash. When several points collide on the exact same hash
// value, the tie is broken by rendezvous (highest-random-weight)
// hashing over the tied members, so ownership stays deterministic and
// independent of member insertion order.
type Ring struct {
	replicas int
	members  []string
	points   []point
}

type point struct {
	hash   uint64
	member string
}

// NewRing builds a ring over the given member addresses (deduplicated;
// order is irrelevant). replicas <= 0 uses DefaultReplicas.
func NewRing(members []string, replicas int) (*Ring, error) {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(members))
	seen := map[string]bool{}
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member address")
		}
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	sort.Strings(uniq)
	r := &Ring{replicas: replicas, members: uniq}
	r.points = make([]point, 0, len(uniq)*replicas)
	for _, m := range uniq {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, point{hash: hash64(m + "#" + strconv.Itoa(i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Members returns the ring's member addresses, sorted.
func (r *Ring) Members() []string { return r.members }

// Contains reports whether addr is a ring member.
func (r *Ring) Contains(addr string) bool {
	i := sort.SearchStrings(r.members, addr)
	return i < len(r.members) && r.members[i] == addr
}

// Owner returns the member that owns key: the member of the first
// virtual node at or clockwise of the key's hash, with rendezvous
// tie-break when several virtual nodes collide on that exact hash.
func (r *Ring) Owner(key string) string {
	if len(r.members) == 1 {
		return r.members[0]
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the ring
	}
	// Collect the run of points sharing the winning hash value; with a
	// 64-bit hash this is almost always a single point.
	end := i + 1
	for end < len(r.points) && r.points[end].hash == r.points[i].hash {
		end++
	}
	if end-i == 1 {
		return r.points[i].member
	}
	best, bestW := "", uint64(0)
	for _, p := range r.points[i:end] {
		if w := hash64(p.member + "\x00" + key); best == "" || w > bestW || (w == bestW && p.member < best) {
			best, bestW = p.member, w
		}
	}
	return best
}

// hash64 is FNV-1a over s: process-stable, allocation-free, and good
// enough for ring placement (vnode fan-out smooths any bias).
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
