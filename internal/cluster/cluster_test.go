package cluster

import (
	"errors"
	"log/slog"
	"testing"
	"time"

	"mix/internal/regioncache"
	"mix/internal/vxdp"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

func TestNodeSingleMemberDegradesToLocal(t *testing.T) {
	cache := regioncache.New(0)
	n, err := New(Config{Self: "127.0.0.1:7800", Logger: quietLogger()}, cache)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if got := n.Owner("homeview", "fp"); got != "127.0.0.1:7800" {
		t.Fatalf("single node does not own its keys: %q", got)
	}
	if !n.Alive("127.0.0.1:7800") {
		t.Fatal("self not alive")
	}
	if reg := n.Fetch(regioncache.Key{Name: "homeview", Fingerprint: "fp"}); reg != nil {
		t.Fatal("single node fetched a region from nowhere")
	}
	n.Flush() // must be a no-op, not a hang or panic
	st := n.Stats()
	if st.Members != 1 || st.PeersUp != 0 || st.PeersDown != 0 {
		t.Fatalf("unexpected membership stats: %+v", st)
	}
}

func TestNodeRequiresCacheAndSelf(t *testing.T) {
	if _, err := New(Config{Self: "a:1"}, nil); err == nil {
		t.Fatal("New without cache succeeded")
	}
	if _, err := New(Config{}, regioncache.New(0)); err == nil {
		t.Fatal("New without self succeeded")
	}
	if _, err := New(Config{Self: "a:1", Mode: Mode("gossip")}, regioncache.New(0)); err == nil {
		t.Fatal("New with bogus mode succeeded")
	}
}

// TestPeerFailureMarksDownWithBackoff drives a peer at an address
// nothing listens on: after FailAfter consecutive dial failures it must
// be down, fail fast during backoff, and re-probe after it expires.
func TestPeerFailureMarksDownWithBackoff(t *testing.T) {
	cfg := Config{
		Self:        "127.0.0.1:7800",
		Peers:       []string{"127.0.0.1:1"}, // nothing listens here
		FailAfter:   2,
		DialTimeout: 200 * time.Millisecond,
		CallTimeout: 200 * time.Millisecond,
		MaxBackoff:  time.Second,
		Logger:      quietLogger(),
	}
	cfg.fill()
	p := newPeer("127.0.0.1:1", cfg)
	noop := func(c *vxdp.Client) error { return nil }
	// First failure: not yet down (FailAfter=2).
	if err := p.do(noop); err == nil {
		t.Fatal("dial to 127.0.0.1:1 succeeded")
	}
	if !p.alive() {
		t.Fatal("peer down after a single failure with FailAfter=2")
	}
	// Second failure: down, with backoff armed.
	if err := p.do(noop); err == nil {
		t.Fatal("dial to 127.0.0.1:1 succeeded")
	}
	if p.alive() {
		t.Fatal("peer still up after FailAfter failures")
	}
	// Inside the backoff window calls fail fast with errPeerDown.
	if err := p.do(noop); !errors.Is(err, errPeerDown) {
		t.Fatalf("call during backoff: got %v, want errPeerDown", err)
	}
}

// TestNodeFetchSkipsDownPeer: a Fetch routed at a down owner must miss
// locally instead of blocking on a dial.
func TestNodeFetchSkipsDownPeer(t *testing.T) {
	cache := regioncache.New(0)
	n, err := New(Config{
		Self:        "127.0.0.1:7800",
		Peers:       []string{"127.0.0.1:1"},
		FailAfter:   1,
		DialTimeout: 200 * time.Millisecond,
		Logger:      quietLogger(),
	}, cache)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	p := n.peers["127.0.0.1:1"]
	p.noteFailure(errors.New("test: induced"))
	if p.alive() {
		t.Fatal("peer still alive after induced failure with FailAfter=1")
	}
	// Find a key the dead peer owns, then fetch it.
	var k regioncache.Key
	found := false
	for i := 0; i < 1000 && !found; i++ {
		k = regioncache.Key{Name: "v", Fingerprint: string(rune('a' + i%26))}
		k.Fingerprint = k.Fingerprint + string(rune('0'+i/26))
		if n.Owner(k.Name, k.Fingerprint) == "127.0.0.1:1" {
			found = true
		}
	}
	if !found {
		t.Skip("no probe key routed to the peer (vanishingly unlikely)")
	}
	start := time.Now()
	if reg := n.Fetch(k); reg != nil {
		t.Fatal("fetched a region from a down peer")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("fetch against a down peer took %v; want immediate local miss", d)
	}
	if n.Stats().L2Misses != 0 {
		// Down-peer short-circuit is not an L2 miss: no peer was asked.
		t.Fatalf("down-peer fetch counted as L2 miss: %+v", n.Stats())
	}
}
