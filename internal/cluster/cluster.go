package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mix/internal/regioncache"
	"mix/internal/trace"
	"mix/internal/vxdp"
)

// Mode selects what a node does with an open whose key another member
// owns.
type Mode string

const (
	// ModeProxy (the default) forwards the open — and every later
	// command of the session — to the owner over a per-session VXDP
	// connection. Transparent to any client.
	ModeProxy Mode = "proxy"
	// ModeRedirect answers the open with the owner's address; a
	// redirect-capable client (vxdp.Client) redials the owner itself,
	// saving the double hop on every later navigation.
	ModeRedirect Mode = "redirect"
	// ModeLocal serves every session locally and relies purely on the
	// L2 region tier to share explored regions across the fleet.
	ModeLocal Mode = "local"
)

// ParseMode validates a -cluster-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeProxy, ModeRedirect, ModeLocal:
		return Mode(s), nil
	}
	return "", fmt.Errorf("cluster: unknown mode %q (want proxy, redirect, or local)", s)
}

// Config configures a cluster node.
type Config struct {
	// Self is this node's advertised address — the one peers dial and
	// the ring hashes. Must appear consistent across the fleet.
	Self string
	// Peers lists the other members' advertised addresses. Self is
	// added implicitly if absent; an empty list is a 1-node cluster.
	Peers []string
	// Replicas is the virtual-node count per member (DefaultReplicas
	// when <= 0).
	Replicas int
	// Mode is the routing mode (ModeProxy when empty).
	Mode Mode
	// HealthInterval spaces the liveness pings (default 2s). Pings
	// double as keep-alives for the control links, so keep it well
	// under the servers' idle timeout.
	HealthInterval time.Duration
	// FlushInterval spaces the L2 flusher sweeps that publish locally
	// explored regions to their owners (default 500ms; <0 disables the
	// background flusher — Flush can still be called manually).
	FlushInterval time.Duration
	// DialTimeout bounds connecting to a peer (default 1s).
	DialTimeout time.Duration
	// CallTimeout bounds one control-link round trip (default 2s).
	CallTimeout time.Duration
	// FailAfter is how many consecutive transport failures mark a peer
	// down (default 2).
	FailAfter int
	// MaxBackoff caps the exponential redial backoff of a down peer
	// (default 30s).
	MaxBackoff time.Duration
	// Logger receives peer up/down transitions (slog.Default when nil).
	Logger *slog.Logger
}

func (c *Config) fill() {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.Mode == "" {
		c.Mode = ModeProxy
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 500 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
}

// MaxRegionWire bounds the encoded size of a region shipped over the L2
// protocol: comfortably under vxdp.MaxFrame so the enclosing frame —
// key, envelope — always fits. Larger regions simply stay node-local.
const MaxRegionWire = vxdp.MaxFrame - 4096

// Node is one member's view of the fleet: the ring, the peer control
// links with their health state, the L2 region tier (it implements
// regioncache.Remote), and the background health/flush loops.
type Node struct {
	cfg   Config
	log   *slog.Logger
	ring  *Ring
	cache *regioncache.Cache
	peers map[string]*peer // keyed by advertised address; excludes Self

	ownedLocal atomic.Int64
	proxied    atomic.Int64
	redirected atomic.Int64
	degraded   atomic.Int64
	l2Hits     atomic.Int64
	l2Misses   atomic.Int64
	l2Serves   atomic.Int64
	l2Fills    atomic.Int64
	invalSent  atomic.Int64
	invalRecv  atomic.Int64
	semLocal   atomic.Int64

	// flushed remembers the Mutations() count last published per key,
	// so sweeps only ship regions that grew since.
	flushMu sync.Mutex
	flushed map[regioncache.Key]int64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// New builds a node over cache (which must be non-nil: the cluster's
// whole point is the shared region tier) and installs it as the cache's
// remote tier. Call Start to begin health checking and flushing.
func New(cfg Config, cache *regioncache.Cache) (*Node, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: node needs an advertised self address")
	}
	if cache == nil {
		return nil, errors.New("cluster: node needs a region cache")
	}
	cfg.fill()
	if _, err := ParseMode(string(cfg.Mode)); err != nil {
		return nil, err
	}
	ring, err := NewRing(append([]string{cfg.Self}, cfg.Peers...), cfg.Replicas)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		log:     cfg.Logger,
		ring:    ring,
		cache:   cache,
		peers:   map[string]*peer{},
		flushed: map[regioncache.Key]int64{},
		stop:    make(chan struct{}),
	}
	for _, m := range ring.Members() {
		if m != cfg.Self {
			n.peers[m] = newPeer(m, cfg)
		}
	}
	cache.SetRemote(n)
	return n, nil
}

// Start launches the health-check and flush loops.
func (n *Node) Start() {
	n.startOnce.Do(func() {
		n.wg.Add(1)
		go n.healthLoop()
		if n.cfg.FlushInterval > 0 {
			n.wg.Add(1)
			go n.flushLoop()
		}
	})
}

// Stop halts the loops and closes all peer control links. The node must
// not be used afterwards.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		n.wg.Wait()
		for _, p := range n.peers {
			p.close()
		}
	})
}

// Self returns this node's advertised address.
func (n *Node) Self() string { return n.cfg.Self }

// SetTracer makes the node's peer control links fleet-traced: each link
// gets its own recorder from mk (one per link — concurrent peers
// sharing a recorder would interleave span stacks), so cross-node L2
// fetches and invalidation fans record peer-labelled spans that ride
// back in responses for stitching. Call before Start; a nil mk leaves
// tracing off.
func (n *Node) SetTracer(mk func() *trace.Recorder) {
	for _, p := range n.peers {
		p.setTracer(mk)
	}
}

// Mode returns the routing mode.
func (n *Node) Mode() Mode { return n.cfg.Mode }

// Members returns the fleet's member addresses, sorted.
func (n *Node) Members() []string { return n.ring.Members() }

// Owner returns the member owning the (view name, fingerprint) key.
func (n *Node) Owner(name, fingerprint string) string {
	return n.ring.Owner(RouteKey(name, fingerprint))
}

// IsSelf reports whether addr is this node.
func (n *Node) IsSelf(addr string) bool { return addr == n.cfg.Self }

// Alive reports whether addr is believed up. Self is always alive;
// unknown addresses never are.
func (n *Node) Alive(addr string) bool {
	if addr == n.cfg.Self {
		return true
	}
	p := n.peers[addr]
	return p != nil && p.alive()
}

// DialOwner opens a fresh connection to a peer for a proxied session
// (distinct from the shared control link, so a slow proxied session
// cannot stall health checks or region traffic).
func (n *Node) DialOwner(addr string) (net.Conn, error) {
	if _, ok := n.peers[addr]; !ok {
		return nil, fmt.Errorf("cluster: %s is not a peer", addr)
	}
	return net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
}

// ReportFailure records a transport failure observed outside the
// control link (e.g. a proxied session's connection dying), pushing the
// peer toward down.
func (n *Node) ReportFailure(addr string) {
	if p := n.peers[addr]; p != nil {
		p.noteFailure(errors.New("cluster: session transport failure"))
	}
}

// Routing/telemetry counters, incremented by the server layer.

// RecordOwnedLocal counts an open served locally because this node owns
// its key.
func (n *Node) RecordOwnedLocal() { n.ownedLocal.Add(1) }

// RecordProxied counts a command forwarded to an owner.
func (n *Node) RecordProxied() { n.proxied.Add(1) }

// RecordRedirected counts an open answered with a redirect.
func (n *Node) RecordRedirected() { n.redirected.Add(1) }

// RecordDegraded counts a session served locally because its owner was
// down (or lost mid-session).
func (n *Node) RecordDegraded() { n.degraded.Add(1) }

// RecordL2Serve counts a region_get this node answered with a region.
func (n *Node) RecordL2Serve() { n.l2Serves.Add(1) }

// RecordL2Fill counts a region_put region this node merged.
func (n *Node) RecordL2Fill() { n.l2Fills.Add(1) }

// RecordInvalRecv counts an invalidation broadcast this node applied.
func (n *Node) RecordInvalRecv() { n.invalRecv.Add(1) }

// Fetch implements regioncache.Remote: the L2 lookup behind every
// locally created cache entry. Keys this node owns (or whose owner is
// down) miss immediately — the owner's L1 *is* the L2, so there is
// nowhere else to ask.
func (n *Node) Fetch(k regioncache.Key) *regioncache.Region {
	owner := n.ring.Owner(RouteKey(k.Name, k.Fingerprint))
	if owner == n.cfg.Self {
		return nil
	}
	p := n.peers[owner]
	if p == nil || !p.alive() {
		return nil
	}
	var reg *regioncache.Region
	err := p.do(func(c *vxdp.Client) error {
		var err error
		reg, err = c.RegionGet(wireKey(k))
		return err
	})
	if err != nil || reg == nil || reg.Empty() {
		n.l2Misses.Add(1)
		return nil
	}
	n.l2Hits.Add(1)
	return reg
}

// FetchComplete implements regioncache.CompleteFetcher: the semantic
// region_get. It asks the *superset key's* owner for its region only if
// fully explored — the asker will answer a subsumed query from it, so a
// partial region is useless (and unsound to decode). Self-owned keys
// miss immediately, exactly like Fetch.
func (n *Node) FetchComplete(k regioncache.Key) *regioncache.Region {
	owner := n.ring.Owner(RouteKey(k.Name, k.Fingerprint))
	if owner == n.cfg.Self {
		return nil
	}
	p := n.peers[owner]
	if p == nil || !p.alive() {
		return nil
	}
	var reg *regioncache.Region
	err := p.do(func(c *vxdp.Client) error {
		var err error
		reg, err = c.RegionGetComplete(wireKey(k))
		return err
	})
	if err != nil || reg == nil || reg.Empty() {
		n.l2Misses.Add(1)
		return nil
	}
	n.l2Hits.Add(1)
	return reg
}

// RecordSemanticLocal counts a routed open short-circuited by the
// semantic tier: served here, with zero source navigations, instead of
// being proxied or redirected to its owner.
func (n *Node) RecordSemanticLocal() { n.semLocal.Add(1) }

// Flush publishes every locally explored region whose key another
// member owns — and which grew since its last publication — to its
// owner via region_put. Safe to call concurrently with serving; the
// background flush loop calls it every FlushInterval.
func (n *Node) Flush() {
	gen := n.cache.Generation()
	n.pruneFlushed(gen)
	n.cache.ForEach(func(e *regioncache.Entry) {
		k := e.Key()
		if k.Generation != gen {
			return // dead epoch; peers dropped it too
		}
		owner := n.ring.Owner(RouteKey(k.Name, k.Fingerprint))
		if owner == n.cfg.Self {
			return
		}
		mut := e.Mutations()
		n.flushMu.Lock()
		last, seen := n.flushed[k]
		n.flushMu.Unlock()
		if seen && mut == last {
			return
		}
		p := n.peers[owner]
		if p == nil || !p.alive() {
			return
		}
		reg := e.Export()
		if reg.Empty() {
			n.markFlushed(k, mut)
			return
		}
		if enc, err := json.Marshal(reg); err != nil || len(enc) > MaxRegionWire {
			// Oversized regions stay node-local; remember the count so
			// the sweep does not re-encode them every interval.
			n.markFlushed(k, mut)
			return
		}
		err := p.do(func(c *vxdp.Client) error {
			return c.RegionPut(wireKey(k), reg)
		})
		if err == nil {
			n.markFlushed(k, mut)
		}
	})
}

func (n *Node) markFlushed(k regioncache.Key, mut int64) {
	n.flushMu.Lock()
	n.flushed[k] = mut
	n.flushMu.Unlock()
}

// pruneFlushed forgets publication state for dead generations, so the
// map cannot grow across invalidation epochs.
func (n *Node) pruneFlushed(gen uint64) {
	n.flushMu.Lock()
	for k := range n.flushed {
		if k.Generation != gen {
			delete(n.flushed, k)
		}
	}
	n.flushMu.Unlock()
}

// BroadcastInvalidate tells every peer to raise its region-cache
// generation to gen. Fire-and-forget with per-peer timeouts: peers that
// are down converge at their next successful health ping, because pings
// return the generation and the health loop re-broadcasts on skew.
func (n *Node) BroadcastInvalidate(gen uint64) {
	for _, p := range n.peers {
		p := p
		n.invalSent.Add(1)
		go func() {
			_ = p.do(func(c *vxdp.Client) error {
				_, err := c.Invalidate(gen)
				return err
			})
		}()
	}
}

// SendPrefetchHint ships a speculative-prefetch hint to the owner of a
// view key, fire-and-forget on the control link: the receiver may drop
// it freely and a lost hint costs nothing (demand still works), so no
// error is reported and no retry state is kept — exactly the contract
// of an invalidation broadcast, minus the convergence loop.
func (n *Node) SendPrefetchHint(owner string, h vxdp.PrefetchHint) {
	p := n.peers[owner]
	if p == nil || !p.alive() {
		return
	}
	go func() {
		_ = p.do(func(c *vxdp.Client) error { return c.PrefetchHint(h) })
	}()
}

// Stats snapshots the node's counters for vxdp.Stats / metrics.
func (n *Node) Stats() *vxdp.ClusterStats {
	up, down := int64(0), int64(0)
	for _, p := range n.peers {
		if p.alive() {
			up++
		} else {
			down++
		}
	}
	return &vxdp.ClusterStats{
		Self:          n.cfg.Self,
		Members:       int64(len(n.ring.Members())),
		PeersUp:       up,
		PeersDown:     down,
		OwnedLocal:    n.ownedLocal.Load(),
		Proxied:       n.proxied.Load(),
		Redirected:    n.redirected.Load(),
		Degraded:      n.degraded.Load(),
		L2Hits:        n.l2Hits.Load(),
		L2Misses:      n.l2Misses.Load(),
		L2Serves:      n.l2Serves.Load(),
		L2Fills:       n.l2Fills.Load(),
		InvalSent:     n.invalSent.Load(),
		InvalRecv:     n.invalRecv.Load(),
		SemanticLocal: n.semLocal.Load(),
	}
}

func (n *Node) healthLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.healthCheck()
		}
	}
}

// healthCheck pings every peer. Beyond liveness, the ping returns the
// peer's cache generation: if a peer lags ours (it was down during a
// BroadcastInvalidate), re-send the invalidation so the fleet
// converges.
func (n *Node) healthCheck() {
	gen := n.cache.Generation()
	for _, p := range n.peers {
		var peerGen uint64
		err := p.do(func(c *vxdp.Client) error {
			var err error
			peerGen, err = c.Ping()
			return err
		})
		if err != nil || peerGen >= gen {
			continue
		}
		_ = p.do(func(c *vxdp.Client) error {
			_, err := c.Invalidate(gen)
			return err
		})
	}
}

func (n *Node) flushLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.Flush()
		}
	}
}

func wireKey(k regioncache.Key) vxdp.RegionKey {
	return vxdp.RegionKey{Gen: k.Generation, Registry: k.Registry, Name: k.Name, Fingerprint: k.Fingerprint}
}

// CacheKey converts a wire region key back to the cache's.
func CacheKey(k vxdp.RegionKey) regioncache.Key {
	return regioncache.Key{Generation: k.Gen, Registry: k.Registry, Name: k.Name, Fingerprint: k.Fingerprint}
}

// --- peer -----------------------------------------------------------------

// peer is one fleet member as seen from this node: a lazily dialed
// control link used for pings and region traffic, plus health state
// with consecutive-failure marking and exponential redial backoff.
type peer struct {
	addr        string
	dialTimeout time.Duration
	callTimeout time.Duration
	failAfter   int
	maxBackoff  time.Duration
	log         *slog.Logger

	downFlag atomic.Bool // readable without mu for fast Alive checks

	mu           sync.Mutex
	conn         net.Conn
	client       *vxdp.Client
	mkTracer     func() *trace.Recorder // nil = untraced link
	fails        int
	backoff      time.Duration
	backoffUntil time.Time
}

// setTracer installs (or clears) the recorder factory used when the
// control link is (re)dialed. The current link, if any, is dropped so
// the next call picks up a traced client.
func (p *peer) setTracer(mk func() *trace.Recorder) {
	p.mu.Lock()
	p.mkTracer = mk
	p.dropLinkLocked()
	p.mu.Unlock()
}

func newPeer(addr string, cfg Config) *peer {
	return &peer{
		addr:        addr,
		dialTimeout: cfg.DialTimeout,
		callTimeout: cfg.CallTimeout,
		failAfter:   cfg.FailAfter,
		maxBackoff:  cfg.MaxBackoff,
		log:         cfg.Logger,
	}
}

var errPeerDown = errors.New("cluster: peer down")

func (p *peer) alive() bool { return !p.downFlag.Load() }

// do runs one control-link call under the peer's call timeout. A down
// peer fails fast until its backoff expires, after which the next call
// is the redial probe. Transport errors drop the link and count toward
// down; in-band remote errors (vxdp.ErrRemote) leave health untouched.
func (p *peer) do(f func(*vxdp.Client) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.downFlag.Load() && time.Now().Before(p.backoffUntil) {
		return errPeerDown
	}
	if p.client == nil {
		conn, err := net.DialTimeout("tcp", p.addr, p.dialTimeout)
		if err != nil {
			p.failLocked(err)
			return err
		}
		p.conn = conn
		p.client = vxdp.NewClient(conn)
		if p.mkTracer != nil {
			if rec := p.mkTracer(); rec != nil {
				p.client.SetTracer(rec)
				p.client.SetTraceLabel(trace.PeerLabel)
			}
		}
	}
	_ = p.conn.SetDeadline(time.Now().Add(p.callTimeout))
	err := f(p.client)
	if err == nil || errors.Is(err, vxdp.ErrRemote) {
		_ = p.conn.SetDeadline(time.Time{})
		p.recoverLocked()
		return err
	}
	p.dropLinkLocked()
	p.failLocked(err)
	return err
}

// noteFailure records an out-of-band transport failure (proxy conn
// death).
func (p *peer) noteFailure(err error) {
	p.mu.Lock()
	p.failLocked(err)
	p.mu.Unlock()
}

func (p *peer) recoverLocked() {
	if p.downFlag.Load() {
		p.log.Info("cluster: peer up", "peer", p.addr)
	}
	p.downFlag.Store(false)
	p.fails = 0
	p.backoff = 0
}

func (p *peer) failLocked(err error) {
	p.fails++
	if p.fails < p.failAfter && !p.downFlag.Load() {
		return
	}
	if !p.downFlag.Load() {
		p.log.Warn("cluster: peer down", "peer", p.addr, "err", err)
	}
	p.downFlag.Store(true)
	if p.backoff == 0 {
		p.backoff = 500 * time.Millisecond
	} else if p.backoff < p.maxBackoff {
		p.backoff *= 2
		if p.backoff > p.maxBackoff {
			p.backoff = p.maxBackoff
		}
	}
	p.backoffUntil = time.Now().Add(p.backoff)
}

func (p *peer) dropLinkLocked() {
	if p.conn != nil {
		_ = p.conn.Close()
	}
	p.conn = nil
	p.client = nil
}

func (p *peer) close() {
	p.mu.Lock()
	p.dropLinkLocked()
	p.mu.Unlock()
}
