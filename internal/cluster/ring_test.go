package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real route keys: view name + NUL + fingerprint.
		keys[i] = RouteKey(fmt.Sprintf("view%d", i%7), fmt.Sprintf("S0:p%d(v0,v1)|cmp%d", i, i*31))
	}
	return keys
}

func members(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("10.0.0.%d:7800", i+1)
	}
	return ms
}

func TestRingOwnerDeterministic(t *testing.T) {
	ms := members(4)
	a, err := NewRing(ms, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Same membership presented in reverse (and with duplicates) must
	// route identically: ownership is a pure function of the set.
	rev := []string{ms[3], ms[1], ms[2], ms[0], ms[1]}
	b, err := NewRing(rev, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q depends on member order: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing(members(4), 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := ringKeys(20000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 members own keys: %v", len(counts), counts)
	}
	// With 64 vnodes each member's share concentrates around 25%; allow
	// a wide statistical corridor so the test is not flaky, while still
	// catching a broken hash (which collapses to one member).
	for m, c := range counts {
		share := float64(c) / float64(len(keys))
		if share < 0.10 || share > 0.45 {
			t.Errorf("member %s owns %.1f%% of keys, outside [10%%, 45%%]: %v", m, 100*share, counts)
		}
	}
}

// TestRingRebalanceOnAdd checks the consistent-hashing contract the
// cluster depends on: growing the fleet from N to N+1 members moves
// only about 1/(N+1) of the keys, and every key that moves, moves to
// the new member — nobody else's keys shuffle among the old members.
func TestRingRebalanceOnAdd(t *testing.T) {
	old, err := NewRing(members(4), 64)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing(members(5), 64)
	if err != nil {
		t.Fatal(err)
	}
	newcomer := members(5)[4]
	keys := ringKeys(20000)
	moved := 0
	for _, k := range keys {
		was, is := old.Owner(k), grown.Owner(k)
		if was == is {
			continue
		}
		moved++
		if is != newcomer {
			t.Fatalf("key %q moved %q -> %q, not to the new member %q", k, was, is, newcomer)
		}
	}
	frac := float64(moved) / float64(len(keys))
	// Expected share is 1/5 = 20%; the corridor tolerates vnode noise
	// but catches full reshuffles (~80% for modulo hashing).
	if frac < 0.08 || frac > 0.40 {
		t.Errorf("adding a 5th member moved %.1f%% of keys, outside [8%%, 40%%]", 100*frac)
	}
}

// TestRingRebalanceOnRemove is the inverse: removing a member moves
// exactly that member's keys, and they redistribute across survivors.
func TestRingRebalanceOnRemove(t *testing.T) {
	ms := members(4)
	old, err := NewRing(ms, 64)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := NewRing(ms[:3], 64)
	if err != nil {
		t.Fatal(err)
	}
	removed := ms[3]
	keys := ringKeys(20000)
	moved := 0
	for _, k := range keys {
		was, is := old.Owner(k), shrunk.Owner(k)
		if was == removed {
			moved++
			if is == removed {
				t.Fatalf("key %q still owned by removed member %q", k, removed)
			}
			continue
		}
		if was != is {
			t.Fatalf("key %q owned by surviving %q moved to %q on unrelated removal", k, was, is)
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.08 || frac > 0.45 {
		t.Errorf("removed member owned %.1f%% of keys, outside [8%%, 45%%]", 100*frac)
	}
}

func TestRingSingleMember(t *testing.T) {
	r, err := NewRing([]string{"solo:7800"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(100) {
		if got := r.Owner(k); got != "solo:7800" {
			t.Fatalf("single-member ring routed %q to %q", k, got)
		}
	}
}

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Fatal("NewRing(nil) succeeded")
	}
	if _, err := NewRing([]string{"a", ""}, 64); err == nil {
		t.Fatal("NewRing with empty member succeeded")
	}
}
