package eager

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mix/internal/algebra"
	"mix/internal/core"
	"mix/internal/nav"
	"mix/internal/pathexpr"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

func evalWith(t *testing.T, srcs map[string]*xmltree.Tree, plan algebra.Op) *xmltree.Tree {
	t.Helper()
	e := New()
	for name, tr := range srcs {
		e.Register(name, nav.NewTreeDoc(tr))
	}
	got, err := e.Eval(plan)
	if err != nil {
		t.Fatalf("eager Eval: %v\nplan:\n%s", err, algebra.String(plan))
	}
	return got
}

func lazyWith(t *testing.T, srcs map[string]*xmltree.Tree, plan algebra.Op) *xmltree.Tree {
	t.Helper()
	e := core.New()
	for name, tr := range srcs {
		e.Register(name, nav.NewTreeDoc(tr))
	}
	q, err := e.Compile(plan)
	if err != nil {
		t.Fatalf("lazy Compile: %v", err)
	}
	got, err := q.Materialize()
	if err != nil {
		t.Fatalf("lazy Materialize: %v", err)
	}
	return got
}

func TestFig4Eager(t *testing.T) {
	homes, schools := workload.HomesSchools(10, 10, 3, 1)
	got := evalWith(t, map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools},
		workload.HomesSchoolsPlan())
	if got.Label != "answer" {
		t.Fatalf("root = %q", got.Label)
	}
	for _, mh := range got.Children {
		if mh.Label != "med_home" {
			t.Fatalf("child %q", mh.Label)
		}
		if mh.FirstChild().Label != "home" {
			t.Fatalf("med_home starts with %q", mh.FirstChild().Label)
		}
		zip := mh.FirstChild().Find("zip").TextContent()
		if len(mh.Children) < 2 {
			t.Fatalf("med_home without schools: %v", mh)
		}
		for _, s := range mh.Children[1:] {
			if s.Label != "school" || s.Find("zip").TextContent() != zip {
				t.Fatalf("school zip mismatch in %v", mh)
			}
		}
	}
}

// The central equivalence property: the lazy mediator tree and the
// eager baseline compute identical answers for every plan and dataset.
func TestLazyEqualsEagerCorpus(t *testing.T) {
	cases := []struct {
		name string
		srcs func(seed int64) map[string]*xmltree.Tree
		plan algebra.Op
	}{
		{
			name: "homeschools",
			srcs: func(seed int64) map[string]*xmltree.Tree {
				h, s := workload.HomesSchools(12, 17, 4, seed)
				return map[string]*xmltree.Tree{"homesSrc": h, "schoolsSrc": s}
			},
			plan: workload.HomesSchoolsPlan(),
		},
		{
			name: "conc",
			srcs: func(seed int64) map[string]*xmltree.Tree {
				return map[string]*xmltree.Tree{
					"s1": workload.FlatList(9, "a", "b"),
					"s2": workload.FlatList(4, "c"),
				}
			},
			plan: workload.ConcPlan("s1", "s2"),
		},
		{
			name: "selection",
			srcs: func(seed int64) map[string]*xmltree.Tree {
				return map[string]*xmltree.Tree{"s": workload.FlatList(20, "a", "b", "c")}
			},
			plan: workload.SelectionPlan("s", "b"),
		},
		{
			name: "reorder",
			srcs: func(seed int64) map[string]*xmltree.Tree {
				h, _ := workload.HomesSchools(15, 0, 5, seed)
				return map[string]*xmltree.Tree{"s": h}
			},
			plan: workload.ReorderPlan("s", "price._"),
		},
		{
			name: "allbooks",
			srcs: func(seed int64) map[string]*xmltree.Tree {
				return map[string]*xmltree.Tree{
					"amazon": workload.Books("az", 25, seed),
					"bn":     workload.Books("bn", 15, seed+1),
				}
			},
			plan: workload.AllBooksPlan("amazon", "bn", "databases"),
		},
		{
			name: "recursive",
			srcs: func(seed int64) map[string]*xmltree.Tree {
				return map[string]*xmltree.Tree{"d": workload.DeepTree(5, 2)}
			},
			plan: workload.RecursivePlan("d"),
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				srcs := c.srcs(seed)
				eagerT := evalWith(t, srcs, c.plan)
				lazyT := lazyWith(t, srcs, c.plan)
				if !xmltree.Equal(eagerT, lazyT) {
					t.Fatalf("seed %d: lazy ≠ eager\neager: %s\nlazy:  %s",
						seed, eagerT, lazyT)
				}
			}
		})
	}
}

// Equivalence must also hold after navigational-complexity rewriting.
func TestRewrittenPlansEquivalent(t *testing.T) {
	homes, schools := workload.HomesSchools(10, 10, 3, 7)
	srcs := map[string]*xmltree.Tree{"homesSrc": homes, "schoolsSrc": schools}

	// A selection over the view, as a client query composed with it.
	base := workload.HomesSchoolsPlan().(*algebra.TupleDestroy)
	// Build σ_{V1<91300}(join…) style plan by inserting selects above
	// the join inside the view.
	gd := func(src, rv, out, path string) *algebra.GetDescendants {
		return &algebra.GetDescendants{
			Input:  &algebra.Source{URL: src, Var: rv},
			Parent: rv, Path: pathexpr.MustParse(path), Out: out,
		}
	}
	left := &algebra.GetDescendants{Input: gd("homesSrc", "r1", "H", "home"),
		Parent: "H", Path: pathexpr.MustParse("zip._"), Out: "V1"}
	right := &algebra.GetDescendants{Input: gd("schoolsSrc", "r2", "S", "school"),
		Parent: "S", Path: pathexpr.MustParse("zip._"), Out: "V2"}
	joined := &algebra.Join{Left: left, Right: right,
		Cond: algebra.Eq(algebra.V("V1"), algebra.V("V2"))}
	sel := &algebra.Select{Input: joined,
		Cond: &algebra.Cmp{Op: algebra.OpLt, L: algebra.V("V1"), R: algebra.Lit("91002")}}
	plan := &algebra.Project{Input: sel, Keep: []string{"H", "S"}}

	rewritten := algebra.Rewrite(plan)
	a := evalWith(t, srcs, plan)
	b := evalWith(t, srcs, rewritten)
	if !xmltree.Equal(a, b) {
		t.Fatalf("rewriting changed semantics:\n%s\nvs\n%s",
			algebra.String(plan), algebra.String(rewritten))
	}
	c := lazyWith(t, srcs, rewritten)
	if !xmltree.Equal(a, c) {
		t.Fatal("lazy evaluation of rewritten plan differs")
	}
	_ = base
}

func TestQuickGetDescendantsLazyEqualsEager(t *testing.T) {
	paths := []string{"a", "a.b", "_", "_._", "a*.b", "(a|b)._", "a+", "_*.b"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomTree(r, 4)
		path := paths[r.Intn(len(paths))]
		gd := &algebra.GetDescendants{
			Input:  &algebra.Source{URL: "s", Var: "R"},
			Parent: "R", Path: pathexpr.MustParse(path), Out: "X",
		}
		plan := &algebra.Project{Input: gd, Keep: []string{"X"}}
		srcs := map[string]*xmltree.Tree{"s": src}

		ev := New()
		ev.Register("s", nav.NewTreeDoc(src))
		eagerT, err := ev.Eval(plan)
		if err != nil {
			return false
		}
		le := core.New()
		le.Register("s", nav.NewTreeDoc(src))
		q, err := le.Compile(plan)
		if err != nil {
			return false
		}
		lazyT, err := q.Materialize()
		if err != nil {
			return false
		}
		_ = srcs
		return xmltree.Equal(eagerT, lazyT)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func randomTree(r *rand.Rand, depth int) *xmltree.Tree {
	labels := []string{"a", "b", "c"}
	t := &xmltree.Tree{Label: labels[r.Intn(len(labels))]}
	if depth <= 0 {
		return t
	}
	for i, n := 0, r.Intn(4); i < n; i++ {
		t.Children = append(t.Children, randomTree(r, depth-1))
	}
	return t
}

func TestEagerBillsFullSources(t *testing.T) {
	homes, schools := workload.HomesSchools(30, 30, 5, 9)
	e := New()
	ch := nav.NewCountingDoc(nav.NewTreeDoc(homes))
	cs := nav.NewCountingDoc(nav.NewTreeDoc(schools))
	e.Register("homesSrc", ch)
	e.Register("schoolsSrc", cs)
	if _, err := e.Eval(workload.HomesSchoolsPlan()); err != nil {
		t.Fatal(err)
	}
	// Materializing a source of n nodes costs ≥ 2n navigations (f+d
	// per node); the whole document must have been read.
	if got, min := ch.Counters.Navigations(), int64(2*homes.Size()); got < min {
		t.Fatalf("homes navigations = %d, want ≥ %d", got, min)
	}
	if got, min := cs.Counters.Navigations(), int64(2*schools.Size()); got < min {
		t.Fatalf("schools navigations = %d, want ≥ %d", got, min)
	}
}

func TestEagerErrors(t *testing.T) {
	e := New()
	if _, err := e.Eval(&algebra.Source{URL: "missing", Var: "X"}); err == nil {
		t.Fatal("unregistered source must fail")
	}
	if _, err := e.Eval(&algebra.Source{}); err == nil {
		t.Fatal("invalid plan must fail")
	}
	e.Register("s", nav.NewTreeDoc(xmltree.Elem("r")))
	gd := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("none"), Out: "X"}
	if _, err := e.Eval(&algebra.TupleDestroy{Input: gd, Var: "X"}); err == nil {
		t.Fatal("tupleDestroy over empty list must fail")
	}
}

func TestEagerSourceMaterializedOncePerEval(t *testing.T) {
	src := workload.FlatList(50, "a")
	cd := nav.NewCountingDoc(nav.NewTreeDoc(src))
	e := New()
	e.Register("s", cd)
	// Self-join: the source appears twice in the plan but is read once.
	l := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R1"},
		Parent: "R1", Path: pathexpr.MustParse("a"), Out: "X"}
	r := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R2"},
		Parent: "R2", Path: pathexpr.MustParse("a"), Out: "Y"}
	plan := &algebra.Join{Left: &algebra.Project{Input: l, Keep: []string{"X"}},
		Right: &algebra.Project{Input: r, Keep: []string{"Y"}}, Cond: algebra.True{}}
	if _, err := e.Eval(plan); err != nil {
		t.Fatal(err)
	}
	first := cd.Counters.Navigations()
	if _, err := e.Eval(plan); err != nil {
		t.Fatal(err)
	}
	if got := cd.Counters.Navigations(); got != 2*first {
		t.Fatalf("per-Eval materialization caching wrong: first=%d total=%d", first, got)
	}
}

func TestEagerHelperOps(t *testing.T) {
	src := xmltree.Elem("r", xmltree.Text("a", "1"), xmltree.Text("a", "2"))
	e := New()
	e.Register("s", nav.NewTreeDoc(src))
	gd := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("a"), Out: "X"}
	wl := &algebra.WrapList{Input: gd, Var: "X", Out: "L"}
	ko := &algebra.Const{Input: wl, Value: xmltree.Text("c", "v"), Out: "K"}
	rn := &algebra.Rename{Input: ko, From: "K", To: "K2"}
	got, err := e.Eval(&algebra.Project{Input: rn, Keep: []string{"L", "K2"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Children) != 2 {
		t.Fatalf("rows = %d", len(got.Children))
	}
	b := got.FirstChild()
	l := b.Find("L").FirstChild()
	if l.Label != "list" || len(l.Children) != 1 || l.Children[0].Label != "a" {
		t.Fatalf("wrapList: %v", l)
	}
	if !xmltree.Equal(b.Find("K2").FirstChild(), xmltree.Text("c", "v")) {
		t.Fatalf("const+rename: %v", b.Find("K2"))
	}
}

func TestEagerOrderByElementsAndEmptyGroup(t *testing.T) {
	// orderBy over element-valued keys compares text content.
	src := xmltree.Elem("r",
		xmltree.Elem("p", xmltree.Text("k", "b")),
		xmltree.Elem("p", xmltree.Text("k", "a")))
	e := New()
	e.Register("s", nav.NewTreeDoc(src))
	gd := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("p"), Out: "P"}
	ob := &algebra.OrderBy{Input: gd, Keys: []string{"P"}}
	got, err := e.Eval(&algebra.Project{Input: ob, Keep: []string{"P"}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Children[0].FirstChild().TextContent() != "a" {
		t.Fatalf("element-key order: %v", got)
	}

	// Empty-by groupBy over empty input yields one empty group.
	gdNone := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R2"},
		Parent: "R2", Path: pathexpr.MustParse("none"), Out: "X"}
	grp := &algebra.GroupBy{Input: gdNone, By: nil, Var: "X", Out: "G"}
	got2, err := e.Eval(grp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Children) != 1 {
		t.Fatalf("empty-by group rows = %d", len(got2.Children))
	}
	lst := got2.FirstChild().Find("G").FirstChild()
	if lst.Label != "list" || len(lst.Children) != 0 {
		t.Fatalf("empty group list: %v", lst)
	}
}

func TestEagerDynamicLabelAndLabelMatch(t *testing.T) {
	src := xmltree.Elem("r", xmltree.Text("tag", "dyn"), xmltree.Text("v", "1"))
	e := New()
	e.Register("s", nav.NewTreeDoc(src))
	gt := &algebra.GetDescendants{Input: &algebra.Source{URL: "s", Var: "R"},
		Parent: "R", Path: pathexpr.MustParse("tag"), Out: "T"}
	sel := &algebra.Select{Input: gt, Cond: &algebra.LabelMatch{Var: "T", Label: "tag"}}
	gv := &algebra.GetDescendants{Input: sel, Parent: "R",
		Path: pathexpr.MustParse("v"), Out: "V"}
	ce := &algebra.CreateElement{Input: gv,
		Label: algebra.LabelSpec{Var: "T"}, Children: "V", Out: "E"}
	got, err := e.Eval(&algebra.Project{Input: ce, Keep: []string{"E"}})
	if err != nil {
		t.Fatal(err)
	}
	el := got.FirstChild().FirstChild().FirstChild()
	if el.Label != "dyn" {
		t.Fatalf("dynamic label = %q", el.Label)
	}
}
