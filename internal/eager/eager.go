// Package eager implements the baseline the paper argues against:
// conventional virtual-view mediation that composes the query with the
// view but then *fully computes and materializes the query result*
// before the client sees anything (Section 1: "current mediator
// systems, even those based on the virtual approach, compute and
// return the results of the user query completely").
//
// The evaluator materializes each referenced source in full through its
// navigational interface (so source-navigation counters bill the whole
// document), then evaluates the algebra bottom-up over in-memory
// binding lists. It doubles as the reference semantics: for every plan,
// eager.Eval and the lazy engine's materialized answer must agree —
// the central equivalence property of the test suite.
package eager

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mix/internal/algebra"
	"mix/internal/nav"
	"mix/internal/pathexpr"
	"mix/internal/xmltree"
)

// Evaluator evaluates plans against a registry of named sources. It is
// safe for concurrent use: registrations are guarded and Eval holds the
// evaluator lock for its full (materializing) run, so concurrent evals
// serialize — acceptable for a baseline whose whole point is to pay the
// materialization cost.
type Evaluator struct {
	mu  sync.Mutex
	reg map[string]nav.Document

	// cache of materialized sources for the lifetime of one Eval call;
	// reset per call so navigation accounting covers each evaluation.
	mat map[string]*xmltree.Tree
}

// New returns an Evaluator with no sources.
func New() *Evaluator {
	return &Evaluator{reg: map[string]nav.Document{}}
}

// Register makes doc available under the given source name.
func (e *Evaluator) Register(name string, doc nav.Document) {
	e.mu.Lock()
	e.reg[name] = doc
	e.mu.Unlock()
}

// row is a materialized variable binding.
type row map[string]*xmltree.Tree

// Value implements algebra.ValueGetter.
func (r row) Value(name string) (*xmltree.Tree, error) {
	t, ok := r[name]
	if !ok {
		return nil, fmt.Errorf("eager: unbound variable $%s", name)
	}
	return t, nil
}

func (r row) with(name string, t *xmltree.Tree) row {
	nr := make(row, len(r)+1)
	for k, v := range r {
		nr[k] = v
	}
	nr[name] = t
	return nr
}

func (r row) key(vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		sb.WriteString(r[v].Canonical())
		sb.WriteByte(0)
	}
	return sb.String()
}

// Eval fully evaluates the plan. For a tupleDestroy-rooted plan the
// result is the answer element; otherwise it is the binding-list tree
// bs[b[…]…] with variables in plan OutVars order.
func (e *Evaluator) Eval(plan algebra.Op) (*xmltree.Tree, error) {
	if err := algebra.Validate(plan); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mat = map[string]*xmltree.Tree{}
	defer func() { e.mat = nil }()

	if td, ok := plan.(*algebra.TupleDestroy); ok {
		rows, err := e.eval(td.Input)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return nil, fmt.Errorf("eager: tupleDestroy over empty binding list")
		}
		return rows[0][td.Var], nil
	}
	rows, err := e.eval(plan)
	if err != nil {
		return nil, err
	}
	return bindingsTree(rows, plan.OutVars()), nil
}

func bindingsTree(rows []row, vars []string) *xmltree.Tree {
	bs := xmltree.Elem("bs")
	for _, r := range rows {
		b := xmltree.Elem("b")
		for _, v := range vars {
			b.Children = append(b.Children, xmltree.Elem(v, r[v]))
		}
		bs.Children = append(bs.Children, b)
	}
	return bs
}

func (e *Evaluator) eval(p algebra.Op) ([]row, error) {
	switch op := p.(type) {
	case *algebra.Source:
		doc, ok := e.reg[op.URL]
		if !ok {
			return nil, fmt.Errorf("eager: unregistered source %q", op.URL)
		}
		t, ok := e.mat[op.URL]
		if !ok {
			var err error
			// Materialize through the navigational interface so the
			// cost of "compute the result completely" is observable.
			t, err = nav.Materialize(doc)
			if err != nil {
				return nil, err
			}
			e.mat[op.URL] = t
		}
		return []row{{op.Var: t}}, nil

	case *algebra.GetDescendants:
		in, err := e.eval(op.Input)
		if err != nil {
			return nil, err
		}
		nfa := pathexpr.Compile(op.Path)
		var out []row
		for _, r := range in {
			parent, ok := r[op.Parent]
			if !ok {
				return nil, fmt.Errorf("eager: unbound variable $%s", op.Parent)
			}
			for _, d := range descendants(parent, nfa) {
				out = append(out, r.with(op.Out, d))
			}
		}
		return out, nil

	case *algebra.Select:
		in, err := e.eval(op.Input)
		if err != nil {
			return nil, err
		}
		var out []row
		for _, r := range in {
			ok, err := op.Cond.Eval(r)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, r)
			}
		}
		return out, nil

	case *algebra.Join:
		left, err := e.eval(op.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.eval(op.Right)
		if err != nil {
			return nil, err
		}
		var out []row
		for _, l := range left {
			for _, r := range right {
				m := make(row, len(l)+len(r))
				for k, v := range l {
					m[k] = v
				}
				for k, v := range r {
					m[k] = v
				}
				ok, err := op.Cond.Eval(m)
				if err != nil {
					return nil, err
				}
				if ok {
					out = append(out, m)
				}
			}
		}
		return out, nil

	case *algebra.GroupBy:
		in, err := e.eval(op.Input)
		if err != nil {
			return nil, err
		}
		if len(op.By) == 0 {
			lst := xmltree.Elem(xmltree.ListLabel)
			for _, r := range in {
				lst.Children = append(lst.Children, r[op.Var])
			}
			return []row{{op.Out: lst}}, nil
		}
		var order []string
		groups := map[string][]row{}
		first := map[string]row{}
		for _, r := range in {
			k := r.key(op.By)
			if _, ok := groups[k]; !ok {
				order = append(order, k)
				first[k] = r
			}
			groups[k] = append(groups[k], r)
		}
		var out []row
		for _, k := range order {
			nr := row{}
			for _, v := range op.By {
				nr[v] = first[k][v]
			}
			lst := xmltree.Elem(xmltree.ListLabel)
			for _, m := range groups[k] {
				lst.Children = append(lst.Children, m[op.Var])
			}
			nr[op.Out] = lst
			out = append(out, nr)
		}
		return out, nil

	case *algebra.Concatenate:
		in, err := e.eval(op.Input)
		if err != nil {
			return nil, err
		}
		var out []row
		for _, r := range in {
			lst := xmltree.Elem(xmltree.ListLabel)
			lst.Children = append(lst.Children, items(r[op.X])...)
			lst.Children = append(lst.Children, items(r[op.Y])...)
			out = append(out, r.with(op.Out, lst))
		}
		return out, nil

	case *algebra.CreateElement:
		in, err := e.eval(op.Input)
		if err != nil {
			return nil, err
		}
		var out []row
		for _, r := range in {
			label := op.Label.Const
			if op.Label.Var != "" {
				lv := r[op.Label.Var]
				if lv.IsLeaf() {
					label = lv.Label
				} else {
					label = lv.TextContent()
				}
			}
			el := xmltree.Elem(label)
			el.Children = append(el.Children, r[op.Children].Children...)
			out = append(out, r.with(op.Out, el))
		}
		return out, nil

	case *algebra.OrderBy:
		in, err := e.eval(op.Input)
		if err != nil {
			return nil, err
		}
		out := make([]row, len(in))
		copy(out, in)
		sort.SliceStable(out, func(i, j int) bool {
			for _, k := range op.Keys {
				if c := algebra.Compare(atomOf(out[i][k]), atomOf(out[j][k])); c != 0 {
					return c < 0
				}
			}
			return false
		})
		return out, nil

	case *algebra.Project:
		in, err := e.eval(op.Input)
		if err != nil {
			return nil, err
		}
		out := make([]row, len(in))
		for i, r := range in {
			nr := make(row, len(op.Keep))
			for _, v := range op.Keep {
				nr[v] = r[v]
			}
			out[i] = nr
		}
		return out, nil

	case *algebra.Union:
		left, err := e.eval(op.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.eval(op.Right)
		if err != nil {
			return nil, err
		}
		return append(append([]row{}, left...), right...), nil

	case *algebra.Difference:
		left, err := e.eval(op.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.eval(op.Right)
		if err != nil {
			return nil, err
		}
		vars := op.Left.OutVars()
		seen := make(map[string]bool, len(right))
		for _, r := range right {
			seen[r.key(vars)] = true
		}
		var out []row
		for _, l := range left {
			if !seen[l.key(vars)] {
				out = append(out, l)
			}
		}
		return out, nil

	case *algebra.Distinct:
		in, err := e.eval(op.Input)
		if err != nil {
			return nil, err
		}
		vars := op.Input.OutVars()
		seen := map[string]bool{}
		var out []row
		for _, r := range in {
			k := r.key(vars)
			if !seen[k] {
				seen[k] = true
				out = append(out, r)
			}
		}
		return out, nil

	case *algebra.WrapList:
		in, err := e.eval(op.Input)
		if err != nil {
			return nil, err
		}
		out := make([]row, len(in))
		for i, r := range in {
			out[i] = r.with(op.Out, xmltree.Elem(xmltree.ListLabel, r[op.Var]))
		}
		return out, nil

	case *algebra.Const:
		in, err := e.eval(op.Input)
		if err != nil {
			return nil, err
		}
		out := make([]row, len(in))
		for i, r := range in {
			out[i] = r.with(op.Out, op.Value)
		}
		return out, nil

	case *algebra.Rename:
		in, err := e.eval(op.Input)
		if err != nil {
			return nil, err
		}
		out := make([]row, len(in))
		for i, r := range in {
			nr := make(row, len(r))
			for k, v := range r {
				if k == op.From {
					k = op.To
				}
				nr[k] = v
			}
			out[i] = nr
		}
		return out, nil

	case *algebra.TupleDestroy:
		return nil, fmt.Errorf("eager: tupleDestroy must be the plan root")

	default:
		return nil, fmt.Errorf("eager: unsupported operator %T", p)
	}
}

func atomOf(t *xmltree.Tree) string {
	if t == nil {
		return ""
	}
	if t.IsLeaf() {
		return t.Label
	}
	return t.TextContent()
}

// items returns the list elements a value contributes to concatenate:
// the children of a list[…] value, the value itself otherwise.
func items(t *xmltree.Tree) []*xmltree.Tree {
	if t.Label == xmltree.ListLabel {
		return t.Children
	}
	return []*xmltree.Tree{t}
}

// descendants returns, in document order, the descendants of t
// reachable by a downward path whose labels match the NFA.
func descendants(t *xmltree.Tree, nfa *pathexpr.NFA) []*xmltree.Tree {
	var out []*xmltree.Tree
	var walk func(n *xmltree.Tree, state pathexpr.StateSet)
	walk = func(n *xmltree.Tree, state pathexpr.StateSet) {
		for _, c := range n.Children {
			st2 := nfa.Step(state, c.Label)
			if !nfa.Alive(st2) {
				continue
			}
			if nfa.Accepting(st2) {
				out = append(out, c)
			}
			walk(c, st2)
		}
	}
	walk(t, nfa.Start())
	return out
}
