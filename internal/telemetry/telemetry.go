// Package telemetry provides the latency side of the observability
// layer: lock-free fixed-bucket histograms with quantile extraction, a
// label-keyed registry, Prometheus text rendering, and the structured
// logger shared by the daemons. It extends — not replaces — the
// navigation counters of internal/metrics: counters measure *how many*
// navigations a query induces (the paper's complexity measure),
// histograms measure *how long* they take on a live mixd.
package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Bucket i holds
// observations in (Bound(i-1), Bound(i)]; bounds grow ×2 from 1µs, so
// the finite range spans 1µs … ~2¹⁷µs ≈ 2.2min, plus an overflow
// bucket. Fixed buckets keep Observe allocation-free and lock-free.
const NumBuckets = 28

// Bound returns the inclusive upper bound of finite bucket i.
func Bound(i int) time.Duration {
	return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
}

// Histogram is a lock-free fixed-bucket latency histogram. The zero
// value is ready to use; all methods may be called concurrently.
type Histogram struct {
	buckets [NumBuckets + 1]atomic.Int64 // last bucket = overflow (+Inf)
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// bucketIndex returns the smallest i with d ≤ Bound(i), or NumBuckets
// for overflow.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	i := bits.Len64(uint64(us - 1)) // smallest i with us ≤ 2^i
	if i > NumBuckets {
		return NumBuckets
	}
	return i
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed latency.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Snapshot is an immutable copy of a histogram's state. Buckets are
// raw (non-cumulative) per-bucket counts; Buckets[NumBuckets] is the
// overflow bucket.
type Snapshot struct {
	Count   int64
	Sum     time.Duration
	Buckets [NumBuckets + 1]int64
}

// Snapshot copies the current state. Concurrent Observes may land
// between bucket reads; the skew is bounded by the in-flight samples.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket where the rank falls. Returns 0 for
// an empty histogram; overflow-bucket ranks return the largest finite
// bound.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(s.Buckets)-1 {
			if i >= NumBuckets {
				return Bound(NumBuckets - 1)
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = Bound(i - 1)
			}
			hi := Bound(i)
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	return 0
}

// P50, P90 and P99 are the quantiles the stats surfaces report.
func (s Snapshot) P50() time.Duration { return s.Quantile(0.50) }
func (s Snapshot) P90() time.Duration { return s.Quantile(0.90) }
func (s Snapshot) P99() time.Duration { return s.Quantile(0.99) }

func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d p50=%s p90=%s p99=%s",
		s.Count, s.P50().Round(time.Microsecond), s.P90().Round(time.Microsecond), s.P99().Round(time.Microsecond))
}

// --- registry -------------------------------------------------------------

// Registry is a concurrent label → *Histogram map: one histogram per
// command kind or per operator label. Histograms are created on first
// use and never removed.
type Registry struct {
	m sync.Map // string -> *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Histogram returns the histogram for label, creating it if needed.
func (r *Registry) Histogram(label string) *Histogram {
	if h, ok := r.m.Load(label); ok {
		return h.(*Histogram)
	}
	h, _ := r.m.LoadOrStore(label, &Histogram{})
	return h.(*Histogram)
}

// Labels returns the registered labels, sorted.
func (r *Registry) Labels() []string {
	var out []string
	r.m.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}

// --- Prometheus text rendering --------------------------------------------

// formatSeconds renders a duration as Prometheus seconds.
func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders every histogram in the registry as one
// Prometheus histogram family named family, with the registry label
// emitted under labelKey. Buckets are cumulative with `le` bounds in
// seconds, per the text exposition format.
func WritePrometheus(w io.Writer, family, help, labelKey string, r *Registry) {
	labels := r.Labels()
	if len(labels) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", family, help, family)
	for _, label := range labels {
		s := r.Histogram(label).Snapshot()
		lv := escapeLabel(label)
		var cum int64
		for i := 0; i < NumBuckets; i++ {
			cum += s.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n", family, labelKey, lv, formatSeconds(Bound(i)), cum)
		}
		cum += s.Buckets[NumBuckets]
		fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", family, labelKey, lv, cum)
		fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", family, labelKey, lv, formatSeconds(s.Sum))
		fmt.Fprintf(w, "%s_count{%s=%q} %d\n", family, labelKey, lv, s.Count)
	}
}

// --- structured logging ---------------------------------------------------

// NewLogger builds the slog logger the daemons share: text or JSON
// handler at the given level ("debug", "info", "warn", "error").
func NewLogger(w io.Writer, level string, json bool) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}
