package telemetry

import (
	"sort"
	"sync/atomic"
	"time"

	"mix/internal/trace"
)

// FlightRecorder is the slow-navigation flight recorder: a fixed-size
// lock-free ring holding the last N completed root spans whose latency
// met a threshold, each with its full (possibly cross-node) fan-out
// attached. When a latency histogram shows a p99 regression, the ring
// holds the exact span trees that caused it.
//
// Offer is wait-free (one atomic ticket plus one pointer store), so it
// is safe to call from a Recorder's RootSink on the serving path; a
// nil *FlightRecorder records nothing.
type FlightRecorder struct {
	threshold time.Duration
	mask      uint64
	seq       atomic.Uint64
	total     atomic.Int64
	slots     []atomic.Pointer[SlowNavigation]
}

// SlowNavigation is one retained slow root: when it completed, where it
// was recorded, and the span tree behind it.
type SlowNavigation struct {
	Seq  uint64
	When time.Time
	Node string
	Root *trace.Span
}

// DefaultSlowRing is the ring size used when a caller passes size <= 0.
const DefaultSlowRing = 64

// NewFlightRecorder returns a recorder retaining the last size slow
// roots (rounded up to a power of two; DefaultSlowRing when <= 0). A
// root is slow when its duration is at least threshold; threshold 0
// retains every offered root.
func NewFlightRecorder(size int, threshold time.Duration) *FlightRecorder {
	if size <= 0 {
		size = DefaultSlowRing
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{
		threshold: threshold,
		mask:      uint64(n - 1),
		slots:     make([]atomic.Pointer[SlowNavigation], n),
	}
}

// Threshold returns the slowness threshold.
func (f *FlightRecorder) Threshold() time.Duration {
	if f == nil {
		return 0
	}
	return f.threshold
}

// Offer records root if its latency meets the threshold; faster roots
// (and offers on a nil recorder) are dropped without synchronization.
func (f *FlightRecorder) Offer(node string, root *trace.Span) {
	if f == nil || root == nil || root.Dur < f.threshold {
		return
	}
	f.total.Add(1)
	rec := &SlowNavigation{When: time.Now(), Node: node, Root: root}
	rec.Seq = f.seq.Add(1)
	f.slots[(rec.Seq-1)&f.mask].Store(rec)
}

// Total returns how many slow navigations have been recorded since
// start — the counter behind mix_slow_navigations_total. Unlike the
// ring, it never forgets.
func (f *FlightRecorder) Total() int64 {
	if f == nil {
		return 0
	}
	return f.total.Load()
}

// Snapshot returns the retained records, oldest first. Concurrent
// offers may overwrite slots while the snapshot walks them; every
// returned record is internally consistent (records are immutable once
// stored), and ordering is restored by sequence number.
func (f *FlightRecorder) Snapshot() []*SlowNavigation {
	if f == nil {
		return nil
	}
	out := make([]*SlowNavigation, 0, len(f.slots))
	for i := range f.slots {
		if rec := f.slots[i].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
