package telemetry

import (
	"math"
	"runtime/metrics"
)

// MemStats is a compact allocation/GC snapshot taken from the
// runtime/metrics interface, for mixbench -mem deltas and the mixd
// /metrics heap gauges. All fields are cumulative since process start
// except HeapBytes, which is instantaneous.
type MemStats struct {
	AllocBytes   uint64  // total bytes allocated on the heap
	AllocObjects uint64  // total heap objects allocated
	HeapBytes    uint64  // bytes of live heap objects right now
	GCCycles     uint64  // completed GC cycles
	GCPauseNs    float64 // estimated total stop-the-world GC pause
}

var memSamples = []metrics.Sample{
	{Name: "/gc/heap/allocs:bytes"},
	{Name: "/gc/heap/allocs:objects"},
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/gc/cycles/total:gc-cycles"},
	{Name: "/sched/pauses/total/gc:seconds"},
}

// ReadMemStats samples the runtime. The pause total is estimated from
// the pause-duration histogram using bucket midpoints, which is exact
// enough to compare two configurations of the same workload.
func ReadMemStats() MemStats {
	samples := make([]metrics.Sample, len(memSamples))
	copy(samples, memSamples)
	metrics.Read(samples)
	var m MemStats
	if samples[0].Value.Kind() == metrics.KindUint64 {
		m.AllocBytes = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		m.AllocObjects = samples[1].Value.Uint64()
	}
	if samples[2].Value.Kind() == metrics.KindUint64 {
		m.HeapBytes = samples[2].Value.Uint64()
	}
	if samples[3].Value.Kind() == metrics.KindUint64 {
		m.GCCycles = samples[3].Value.Uint64()
	}
	if samples[4].Value.Kind() == metrics.KindFloat64Histogram {
		m.GCPauseNs = histogramTotalNs(samples[4].Value.Float64Histogram())
	}
	return m
}

func histogramTotalNs(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var total float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		// Clamp the open-ended edge buckets to their finite bound.
		mid := (lo + hi) / 2
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		}
		total += float64(n) * mid * 1e9
	}
	return total
}

// Sub returns the delta m-b field by field (HeapBytes stays absolute:
// it is a level, not a counter).
func (m MemStats) Sub(b MemStats) MemStats {
	return MemStats{
		AllocBytes:   m.AllocBytes - b.AllocBytes,
		AllocObjects: m.AllocObjects - b.AllocObjects,
		HeapBytes:    m.HeapBytes,
		GCCycles:     m.GCCycles - b.GCCycles,
		GCPauseNs:    m.GCPauseNs - b.GCPauseNs,
	}
}
