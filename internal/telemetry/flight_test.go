package telemetry

import (
	"sync"
	"testing"
	"time"

	"mix/internal/trace"
)

func TestFlightRecorderThresholdFilters(t *testing.T) {
	f := NewFlightRecorder(8, 10*time.Millisecond)
	f.Offer("a", &trace.Span{Label: "client", Op: "d", Dur: 9 * time.Millisecond})
	f.Offer("a", &trace.Span{Label: "client", Op: "d", Dur: 10 * time.Millisecond})
	f.Offer("a", &trace.Span{Label: "client", Op: "d", Dur: time.Second})
	f.Offer("a", nil)
	if got := f.Total(); got != 2 {
		t.Fatalf("Total = %d, want 2 (sub-threshold and nil offers dropped)", got)
	}
	if got := len(f.Snapshot()); got != 2 {
		t.Fatalf("Snapshot holds %d, want 2", got)
	}
}

func TestFlightRecorderZeroThresholdRetainsAll(t *testing.T) {
	f := NewFlightRecorder(8, 0)
	f.Offer("a", &trace.Span{Label: "client", Op: "d"}) // Dur 0 still meets 0
	if f.Total() != 1 {
		t.Fatal("zero-threshold recorder dropped a zero-duration root")
	}
}

func TestFlightRecorderRingWraps(t *testing.T) {
	f := NewFlightRecorder(4, 0)
	for i := 0; i < 10; i++ {
		f.Offer("a", &trace.Span{Label: "client", Op: "d", Start: time.Duration(i)})
	}
	if f.Total() != 10 {
		t.Fatalf("Total = %d, want 10 (counter never forgets)", f.Total())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snap))
	}
	// Oldest first, and only the newest four survive (seqs 7..10).
	for i, rec := range snap {
		if want := uint64(7 + i); rec.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
	}
}

func TestFlightRecorderSizeRoundsToPowerOfTwo(t *testing.T) {
	f := NewFlightRecorder(5, 0)
	for i := 0; i < 20; i++ {
		f.Offer("a", &trace.Span{Label: "client", Op: "d"})
	}
	if got := len(f.Snapshot()); got != 8 {
		t.Fatalf("size-5 ring retained %d, want 8 (next power of two)", got)
	}
	if NewFlightRecorder(0, 0).mask != DefaultSlowRing-1 {
		t.Fatal("size <= 0 did not fall back to DefaultSlowRing")
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Offer("a", &trace.Span{Dur: time.Hour})
	if f.Total() != 0 || f.Snapshot() != nil || f.Threshold() != 0 {
		t.Fatal("nil recorder is not inert")
	}
}

func TestFlightRecorderRecordsMetadata(t *testing.T) {
	f := NewFlightRecorder(4, 0)
	root := &trace.Span{Label: "client", Op: "d", Dur: time.Millisecond}
	before := time.Now()
	f.Offer("node-b", root)
	snap := f.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %d records", len(snap))
	}
	rec := snap[0]
	if rec.Node != "node-b" || rec.Root != root || rec.Seq != 1 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.When.Before(before.Add(-time.Second)) || rec.When.After(time.Now().Add(time.Second)) {
		t.Fatalf("When = %v, not near now", rec.When)
	}
}

// TestFlightRecorderConcurrentOffer is the -race guard for the
// wait-free path: many goroutines offering into a small ring while a
// reader snapshots must stay safe, lose no counts, and keep every
// snapshot internally ordered.
func TestFlightRecorderConcurrentOffer(t *testing.T) {
	f := NewFlightRecorder(8, 0)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := f.Snapshot()
			for i := 1; i < len(snap); i++ {
				if snap[i-1].Seq >= snap[i].Seq {
					panic("snapshot out of order")
				}
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Offer("a", &trace.Span{Label: "client", Op: "d"})
			}
		}()
	}
	wg.Wait()
	close(stop)
	if f.Total() != goroutines*per {
		t.Fatalf("Total = %d, want %d", f.Total(), goroutines*per)
	}
}
