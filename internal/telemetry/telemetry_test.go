package telemetry_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"mix/internal/telemetry"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h telemetry.Histogram
	// 100 samples at ~3µs, 10 at ~100µs, 1 at ~10ms.
	for i := 0; i < 100; i++ {
		h.Observe(3 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Microsecond)
	}
	h.Observe(10 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 111 {
		t.Fatalf("count = %d", s.Count)
	}
	if got, want := s.Sum, 100*3*time.Microsecond+10*100*time.Microsecond+10*time.Millisecond; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// p50 falls in the 2–4µs bucket, p99 well above 64µs.
	if p50 := s.P50(); p50 < 2*time.Microsecond || p50 > 4*time.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 := s.P99(); p99 < 64*time.Microsecond {
		t.Fatalf("p99 = %v", p99)
	}
	if s.P90() > s.P99() {
		t.Fatalf("p90 %v > p99 %v", s.P90(), s.P99())
	}
}

func TestHistogramEdges(t *testing.T) {
	var h telemetry.Histogram
	if s := h.Snapshot(); s.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile = %v", s.Quantile(0.5))
	}
	h.Observe(0)                    // below the first bound
	h.Observe(-time.Second)         // clamped
	h.Observe(365 * 24 * time.Hour) // overflow bucket
	s := h.Snapshot()
	if s.Buckets[0] != 2 {
		t.Fatalf("first bucket = %d, want 2", s.Buckets[0])
	}
	if s.Buckets[telemetry.NumBuckets] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Buckets[telemetry.NumBuckets])
	}
	// The overflow quantile is clamped to the largest finite bound.
	if q := s.Quantile(1); q != telemetry.Bound(telemetry.NumBuckets-1) {
		t.Fatalf("q100 = %v", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h telemetry.Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if n := h.Count(); n != 8000 {
		t.Fatalf("count = %d, want 8000", n)
	}
}

func TestRegistryAndPrometheus(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Histogram("down").Observe(5 * time.Microsecond)
	r.Histogram("down").Observe(50 * time.Microsecond)
	r.Histogram("fetch").Observe(time.Millisecond)
	if got := r.Labels(); len(got) != 2 || got[0] != "down" || got[1] != "fetch" {
		t.Fatalf("labels = %v", got)
	}
	var b strings.Builder
	telemetry.WritePrometheus(&b, "mix_request_duration_seconds", "request latency", "op", r)
	out := b.String()
	for _, want := range []string{
		"# TYPE mix_request_duration_seconds histogram",
		`mix_request_duration_seconds_bucket{op="down",le="+Inf"} 2`,
		`mix_request_duration_seconds_count{op="down"} 2`,
		`mix_request_duration_seconds_count{op="fetch"} 1`,
		`mix_request_duration_seconds_sum{op="down"} 5.5e-05`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets never decrease.
	if strings.Contains(out, "-1") {
		t.Fatalf("negative value in output:\n%s", out)
	}
}

func TestWritePrometheusEmptyRegistry(t *testing.T) {
	var b strings.Builder
	telemetry.WritePrometheus(&b, "f", "h", "op", telemetry.NewRegistry())
	if b.Len() != 0 {
		t.Fatalf("empty registry rendered %q", b.String())
	}
}

func TestNewLogger(t *testing.T) {
	var b strings.Builder
	log, err := telemetry.NewLogger(&b, "debug", true)
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hello", "k", "v")
	if !strings.Contains(b.String(), `"msg":"hello"`) || !strings.Contains(b.String(), `"k":"v"`) {
		t.Fatalf("json log = %q", b.String())
	}
	if _, err := telemetry.NewLogger(&b, "loud", false); err == nil {
		t.Fatal("bad level accepted")
	}
	b.Reset()
	log2, err := telemetry.NewLogger(&b, "warn", false)
	if err != nil {
		t.Fatal(err)
	}
	log2.Info("dropped")
	if b.Len() != 0 {
		t.Fatalf("info leaked through warn level: %q", b.String())
	}
}
