// Package relational is the in-memory relational substrate standing in
// for the JDBC-wrapped RDBMS of the paper's relational wrapper example
// (Section 4): named tables of typed-as-text rows, accessed through
// forward-only cursors whose fetches are individually accounted — the
// tuple-at-a-time granularity the buffer/LXP machinery reconciles with
// DOM-VXD's node-at-a-time navigation.
package relational

import (
	"fmt"
	"sort"

	"mix/internal/metrics"
)

// Table is a named relation: a fixed column list and rows of strings.
type Table struct {
	Name string
	Cols []string
	Rows [][]string
}

// NewTable creates an empty table with the given columns.
func NewTable(name string, cols ...string) *Table {
	return &Table{Name: name, Cols: cols}
}

// Insert appends a row; the number of values must match the columns.
func (t *Table) Insert(values ...string) error {
	if len(values) != len(t.Cols) {
		return fmt.Errorf("relational: table %s has %d columns, got %d values",
			t.Name, len(t.Cols), len(values))
	}
	row := make([]string, len(values))
	copy(row, values)
	t.Rows = append(t.Rows, row)
	return nil
}

// MustInsert is Insert for test fixtures; it panics on arity mismatch.
func (t *Table) MustInsert(values ...string) {
	if err := t.Insert(values...); err != nil {
		panic(err)
	}
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// Col returns the index of the named column, or -1.
func (t *Table) Col(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// DB is a named collection of tables.
type DB struct {
	Name   string
	tables map[string]*Table

	// Counters bills cursor fetches (Tuples) and opened cursors
	// (Queries) for the experiments.
	Counters *metrics.Counters
}

// NewDB creates an empty database.
func NewDB(name string) *DB {
	return &DB{Name: name, tables: map[string]*Table{}, Counters: &metrics.Counters{}}
}

// Create adds a new table and returns it; it replaces an existing
// table of the same name.
func (d *DB) Create(name string, cols ...string) *Table {
	t := NewTable(name, cols...)
	d.tables[name] = t
	return t
}

// Table returns the named table, or nil.
func (d *DB) Table(name string) *Table { return d.tables[name] }

// TableNames returns the table names in sorted order (the relational
// schema the wrapper exposes at the database level).
func (d *DB) TableNames() []string {
	out := make([]string, 0, len(d.tables))
	for n := range d.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Cursor is a forward-only cursor over a table, the paper's "relational
// cursor". Every fetched tuple is billed to the DB's counters.
type Cursor struct {
	db    *DB
	table *Table
	pos   int
}

// OpenCursor opens a cursor positioned before the first row, optionally
// skipping to a start row (the wrapper's "advance the relational cursor
// based on the form of the hole id").
func (d *DB) OpenCursor(table string, startRow int) (*Cursor, error) {
	t := d.tables[table]
	if t == nil {
		return nil, fmt.Errorf("relational: no table %q in %s", table, d.Name)
	}
	if startRow < 0 {
		return nil, fmt.Errorf("relational: negative start row %d", startRow)
	}
	d.Counters.Queries.Add(1)
	return &Cursor{db: d, table: t, pos: startRow}, nil
}

// Fetch returns the next row, or nil at end of table.
func (c *Cursor) Fetch() []string {
	if c.pos >= len(c.table.Rows) {
		return nil
	}
	row := c.table.Rows[c.pos]
	c.pos++
	c.db.Counters.Tuples.Add(1)
	return row
}

// FetchN returns up to n next rows.
func (c *Cursor) FetchN(n int) [][]string {
	var out [][]string
	for i := 0; i < n; i++ {
		row := c.Fetch()
		if row == nil {
			break
		}
		out = append(out, row)
	}
	return out
}

// Pos returns the current row position.
func (c *Cursor) Pos() int { return c.pos }

// Cols returns the cursor's column names.
func (c *Cursor) Cols() []string { return c.table.Cols }
