package relational

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadCSV reads a table from CSV: the first record is the column list,
// every following record a row. The table is created (or replaced) in
// the database under the given name.
func (d *DB) LoadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 0 // all records must match the header's arity
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relational: reading CSV header for %s: %w", name, err)
	}
	t := d.Create(name, header...)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relational: reading CSV rows for %s: %w", name, err)
		}
		if err := t.Insert(rec...); err != nil {
			return nil, err
		}
	}
}

// LoadCSVDir creates a database named dbName from a directory of
// *.csv files, one table per file (table name = file name without the
// extension), loaded in sorted order.
func LoadCSVDir(dbName, dir string) (*DB, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("relational: no .csv files in %s", dir)
	}
	sort.Strings(files)
	db := NewDB(dbName)
	for _, f := range files {
		fh, err := os.Open(filepath.Join(dir, f))
		if err != nil {
			return nil, err
		}
		_, err = db.LoadCSV(strings.TrimSuffix(f, ".csv"), fh)
		fh.Close()
		if err != nil {
			return nil, err
		}
	}
	return db, nil
}
