package relational

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleDB() *DB {
	db := NewDB("realestate")
	homes := db.Create("homes", "addr", "zip", "price")
	homes.MustInsert("La Jolla", "91220", "500000")
	homes.MustInsert("El Cajon", "91223", "300000")
	homes.MustInsert("Del Mar", "91220", "900000")
	schools := db.Create("schools", "dir", "zip")
	schools.MustInsert("Smith", "91220")
	return db
}

func TestTableBasics(t *testing.T) {
	db := sampleDB()
	homes := db.Table("homes")
	if homes.NumRows() != 3 {
		t.Fatalf("rows = %d", homes.NumRows())
	}
	if homes.Col("zip") != 1 || homes.Col("nope") != -1 {
		t.Fatal("Col lookup")
	}
	if err := homes.Insert("too", "few"); err == nil {
		t.Fatal("arity mismatch should fail")
	}
	if db.Table("missing") != nil {
		t.Fatal("missing table should be nil")
	}
	if got := db.TableNames(); !reflect.DeepEqual(got, []string{"homes", "schools"}) {
		t.Fatalf("TableNames = %v", got)
	}
}

func TestMustInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInsert should panic on arity mismatch")
		}
	}()
	NewTable("t", "a").MustInsert("x", "y")
}

func TestCursor(t *testing.T) {
	db := sampleDB()
	cur, err := db.OpenCursor("homes", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := cur.Fetch(); got[0] != "La Jolla" {
		t.Fatalf("first row = %v", got)
	}
	rest := cur.FetchN(10)
	if len(rest) != 2 || rest[1][0] != "Del Mar" {
		t.Fatalf("rest = %v", rest)
	}
	if cur.Fetch() != nil {
		t.Fatal("exhausted cursor should return nil")
	}
	if cur.Pos() != 3 {
		t.Fatalf("Pos = %d", cur.Pos())
	}
	if !reflect.DeepEqual(cur.Cols(), []string{"addr", "zip", "price"}) {
		t.Fatalf("Cols = %v", cur.Cols())
	}
}

func TestCursorStartRow(t *testing.T) {
	db := sampleDB()
	cur, err := db.OpenCursor("homes", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := cur.Fetch(); got[0] != "Del Mar" {
		t.Fatalf("row at 2 = %v", got)
	}
	if _, err := db.OpenCursor("homes", -1); err == nil {
		t.Fatal("negative start must fail")
	}
	if _, err := db.OpenCursor("nope", 0); err == nil {
		t.Fatal("missing table must fail")
	}
	past, err := db.OpenCursor("homes", 99)
	if err != nil {
		t.Fatal(err)
	}
	if past.Fetch() != nil {
		t.Fatal("past-end cursor should be empty")
	}
}

func TestAccounting(t *testing.T) {
	db := sampleDB()
	cur, _ := db.OpenCursor("homes", 0)
	cur.FetchN(2)
	cur2, _ := db.OpenCursor("schools", 0)
	cur2.Fetch()
	s := db.Counters.Snapshot()
	if s.Tuples != 3 {
		t.Fatalf("Tuples = %d", s.Tuples)
	}
	if s.Queries != 2 {
		t.Fatalf("Queries = %d", s.Queries)
	}
}

func TestLargeTableFetchAll(t *testing.T) {
	db := NewDB("big")
	tb := db.Create("t", "id")
	for i := 0; i < 1000; i++ {
		tb.MustInsert(fmt.Sprintf("%d", i))
	}
	cur, _ := db.OpenCursor("t", 0)
	n := 0
	for cur.Fetch() != nil {
		n++
	}
	if n != 1000 {
		t.Fatalf("fetched %d", n)
	}
}

func TestLoadCSV(t *testing.T) {
	db := NewDB("d")
	tb, err := db.LoadCSV("homes", strings.NewReader("addr,zip\nLa Jolla,91220\nEl Cajon,91223\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 || tb.Cols[1] != "zip" {
		t.Fatalf("loaded table wrong: %+v", tb)
	}
	if tb.Rows[1][0] != "El Cajon" {
		t.Fatalf("row content: %v", tb.Rows[1])
	}
	if _, err := db.LoadCSV("bad", strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("ragged CSV must fail")
	}
	if _, err := db.LoadCSV("empty", strings.NewReader("")); err == nil {
		t.Fatal("empty CSV must fail")
	}
}

func TestLoadCSVDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "homes.csv"),
		[]byte("addr,zip\nX,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "schools.csv"),
		[]byte("dir,zip\nS,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"),
		[]byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := LoadCSVDir("realestate", dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.TableNames(); len(got) != 2 || got[0] != "homes" {
		t.Fatalf("tables = %v", got)
	}
	if _, err := LoadCSVDir("x", filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing dir must fail")
	}
	empty := t.TempDir()
	if _, err := LoadCSVDir("x", empty); err == nil {
		t.Fatal("dir without csv must fail")
	}
}
