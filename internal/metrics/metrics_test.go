package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCountersBasics(t *testing.T) {
	var c Counters
	c.Down.Add(3)
	c.Right.Add(2)
	c.Fetch.Add(5)
	c.Select.Add(1)
	c.Root.Add(1)
	c.Msgs.Add(7)
	c.Bytes.Add(100)
	c.Tuples.Add(9)
	c.Fills.Add(6)
	c.Queries.Add(2)

	if got := c.Navigations(); got != 12 {
		t.Fatalf("Navigations = %d, want 12", got)
	}
	s := c.Snapshot()
	if s.Down != 3 || s.Right != 2 || s.Fetch != 5 || s.Select != 1 || s.Root != 1 {
		t.Fatalf("snapshot nav fields: %+v", s)
	}
	if s.Msgs != 7 || s.Bytes != 100 || s.Tuples != 9 || s.Fills != 6 || s.Queries != 2 {
		t.Fatalf("snapshot io fields: %+v", s)
	}
	if s.Navigations() != 12 {
		t.Fatalf("snapshot Navigations = %d", s.Navigations())
	}

	c.Down.Add(10)
	delta := c.Snapshot().Sub(s)
	if delta.Down != 10 || delta.Fetch != 0 || delta.Navigations() != 10 {
		t.Fatalf("delta = %+v", delta)
	}

	c.Reset()
	if c.Navigations() != 0 || c.Snapshot().Bytes != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestSnapshotString(t *testing.T) {
	var c Counters
	c.Down.Add(4)
	c.Root.Add(1)
	c.Msgs.Add(2)
	c.Queries.Add(3)
	str := c.Snapshot().String()
	// Every field must appear — root and queries were once dropped.
	for _, want := range []string{"navs=5", "d=4", "root=1", "msgs=2", "queries=3"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q: %s", want, str)
		}
	}
}

func TestCountersAdd(t *testing.T) {
	var a, b Counters
	a.Down.Add(1)
	a.Queries.Add(2)
	b.Down.Add(10)
	b.Root.Add(4)
	b.Bytes.Add(8)
	a.Add(b.Snapshot())
	s := a.Snapshot()
	if s.Down != 11 || s.Root != 4 || s.Bytes != 8 || s.Queries != 2 {
		t.Fatalf("after Add: %+v", s)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Down.Add(1)
				c.Bytes.Add(2)
			}
		}()
	}
	wg.Wait()
	if c.Down.Load() != 8000 || c.Bytes.Load() != 16000 {
		t.Fatalf("concurrent counts: down=%d bytes=%d", c.Down.Load(), c.Bytes.Load())
	}
}

// TestCountersConcurrentReaders: snapshots, totals, and String are safe
// while every counter is being bumped from many goroutines — the mixd
// server shares one Counters across all its sessions, making this the
// hot concurrent path.
func TestCountersConcurrentReaders(t *testing.T) {
	var c Counters
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := c.Snapshot()
				if s.Navigations() < 0 || len(s.String()) == 0 {
					t.Error("implausible snapshot")
					return
				}
				_ = c.Navigations()
			}
		}()
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				c.Down.Add(1)
				c.Right.Add(1)
				c.Fetch.Add(1)
				c.Select.Add(1)
				c.Root.Add(1)
				c.Msgs.Add(1)
				c.Bytes.Add(1)
				c.Tuples.Add(1)
				c.Fills.Add(1)
				c.Queries.Add(1)
			}
		}()
	}
	// Let readers overlap the writers, then stop them.
	for c.Queries.Load() < writers*perWriter {
	}
	close(stop)
	wg.Wait()
	s := c.Snapshot()
	if s.Navigations() != 5*writers*perWriter || s.Queries != writers*perWriter {
		t.Fatalf("lost updates: %+v", s)
	}
}
