// Package metrics provides the counters used by the navigational-
// complexity experiments: navigation commands issued at a source
// boundary, LXP messages and bytes on the wire, and relational tuple
// fetches. Counters are safe for concurrent use.
package metrics

import (
	"fmt"
	"sync/atomic"
)

// Counters aggregates the observable costs of evaluating a query.
// The zero value is ready to use.
type Counters struct {
	Down    atomic.Int64 // d commands answered
	Right   atomic.Int64 // r commands answered
	Fetch   atomic.Int64 // f commands answered
	Select  atomic.Int64 // native select(σ) commands answered
	Root    atomic.Int64 // root handle requests answered
	Msgs    atomic.Int64 // LXP protocol messages (get_root + fill)
	Bytes   atomic.Int64 // LXP payload bytes transferred
	Tuples  atomic.Int64 // relational cursor fetches
	Fills   atomic.Int64 // LXP fill requests
	Queries atomic.Int64 // source queries issued (wrapper level)
}

// Navigations returns the total number of navigation commands
// (d + r + f + select + root) answered — the paper's measure of
// navigational complexity at this boundary.
func (c *Counters) Navigations() int64 {
	return c.Down.Load() + c.Right.Load() + c.Fetch.Load() + c.Select.Load() + c.Root.Load()
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.Down.Store(0)
	c.Right.Store(0)
	c.Fetch.Store(0)
	c.Select.Store(0)
	c.Root.Store(0)
	c.Msgs.Store(0)
	c.Bytes.Store(0)
	c.Tuples.Store(0)
	c.Fills.Store(0)
	c.Queries.Store(0)
}

// Add accumulates a snapshot into the counters — used to fold a
// finished session's counters into a server-wide total.
func (c *Counters) Add(s Snapshot) {
	c.Down.Add(s.Down)
	c.Right.Add(s.Right)
	c.Fetch.Add(s.Fetch)
	c.Select.Add(s.Select)
	c.Root.Add(s.Root)
	c.Msgs.Add(s.Msgs)
	c.Bytes.Add(s.Bytes)
	c.Tuples.Add(s.Tuples)
	c.Fills.Add(s.Fills)
	c.Queries.Add(s.Queries)
}

// Snapshot is an immutable copy of a Counters' values.
type Snapshot struct {
	Down, Right, Fetch, Select, Root    int64
	Msgs, Bytes, Tuples, Fills, Queries int64
}

// Snapshot copies the current values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Down:    c.Down.Load(),
		Right:   c.Right.Load(),
		Fetch:   c.Fetch.Load(),
		Select:  c.Select.Load(),
		Root:    c.Root.Load(),
		Msgs:    c.Msgs.Load(),
		Bytes:   c.Bytes.Load(),
		Tuples:  c.Tuples.Load(),
		Fills:   c.Fills.Load(),
		Queries: c.Queries.Load(),
	}
}

// Navigations of a snapshot.
func (s Snapshot) Navigations() int64 { return s.Down + s.Right + s.Fetch + s.Select + s.Root }

// Add returns the element-wise sum s + t, for aggregating snapshots
// from several boundaries (e.g. a server's live sessions).
func (s Snapshot) Add(t Snapshot) Snapshot {
	return Snapshot{
		Down:    s.Down + t.Down,
		Right:   s.Right + t.Right,
		Fetch:   s.Fetch + t.Fetch,
		Select:  s.Select + t.Select,
		Root:    s.Root + t.Root,
		Msgs:    s.Msgs + t.Msgs,
		Bytes:   s.Bytes + t.Bytes,
		Tuples:  s.Tuples + t.Tuples,
		Fills:   s.Fills + t.Fills,
		Queries: s.Queries + t.Queries,
	}
}

// Sub returns the element-wise difference s - t, for measuring a
// window of activity between two snapshots.
func (s Snapshot) Sub(t Snapshot) Snapshot {
	return Snapshot{
		Down:    s.Down - t.Down,
		Right:   s.Right - t.Right,
		Fetch:   s.Fetch - t.Fetch,
		Select:  s.Select - t.Select,
		Root:    s.Root - t.Root,
		Msgs:    s.Msgs - t.Msgs,
		Bytes:   s.Bytes - t.Bytes,
		Tuples:  s.Tuples - t.Tuples,
		Fills:   s.Fills - t.Fills,
		Queries: s.Queries - t.Queries,
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("navs=%d (d=%d r=%d f=%d sel=%d root=%d) msgs=%d bytes=%d tuples=%d fills=%d queries=%d",
		s.Navigations(), s.Down, s.Right, s.Fetch, s.Select, s.Root, s.Msgs, s.Bytes, s.Tuples, s.Fills, s.Queries)
}
