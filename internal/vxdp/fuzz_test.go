package vxdp

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"mix/internal/regioncache"
)

// FuzzReadFrame: no byte stream may panic the codec; truncated,
// malformed, and oversized frames must surface as errors.
func FuzzReadFrame(f *testing.F) {
	// A valid frame.
	var ok bytes.Buffer
	if err := WriteFrame(&ok, Request{Cmd: Cmd{Op: OpDown, ID: 7}}); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	// Truncated header, truncated payload, hostile length prefix,
	// valid length with garbage JSON.
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 9, '{'})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add([]byte{0, 0, 0, 2, 'n', 'o'})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		_ = ReadFrame(bytes.NewReader(data), &req) // must not panic
	})
}

// FuzzRegionCodec: the cluster's L2 region frames — region_get /
// region_put requests and region-bearing responses — must decode
// arbitrary bytes without panicking, and every region tree that decodes
// must survive a re-encode round trip. Regions come from *peers*, so
// the codec is a trust boundary even inside one fleet.
func FuzzRegionCodec(f *testing.F) {
	seed := func(v any) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, v); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	key := RegionKey{Gen: 3, Registry: 2, Name: "homeview", Fingerprint: "S0:p(v0,v1)"}
	tree := &regioncache.Region{Known: true, Label: "a", Kids: []*regioncache.Region{
		{Known: true, Label: "b", Complete: true},
		{Kids: []*regioncache.Region{{Known: true, Label: "c"}}},
	}}
	seed(Request{Cmd: Cmd{Op: OpRegionGet}, Region: &key})
	seed(Request{Cmd: Cmd{Op: OpRegionPut}, Region: &key, Tree: tree})
	seed(Request{Cmd: Cmd{Op: OpInvalidate}, Gen: 41})
	seed(Response{NavResult: NavResult{OK: true}, Tree: tree, Gen: 3})
	// Hostile shapes: deep nesting, type confusion on the kids array.
	f.Add([]byte{0, 0, 0, 30, '{', '"', 't', 'r', 'e', 'e', '"', ':', '{', '"', 'c', '"', ':', '[', '{', '"', 'c', '"', ':', '[', '{', '}', ']', '}', ']', '}', '}'})
	f.Add([]byte{0, 0, 0, 14, '{', '"', 't', 'r', 'e', 'e', '"', ':', '{', '"', 'c', '"', ':', '1', '}'})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := ReadFrame(bytes.NewReader(data), &req); err == nil && req.Tree != nil {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, Request{Cmd: req.Cmd, Region: req.Region, Tree: req.Tree}); err == nil {
				var rt Request
				if err := ReadFrame(&buf, &rt); err != nil {
					t.Fatalf("re-decode of re-encoded region failed: %v", err)
				}
				if !rt.Tree.Equal(req.Tree) {
					t.Fatal("region tree not stable under re-encode")
				}
			}
		}
		var resp Response
		_ = ReadFrame(bytes.NewReader(data), &resp) // must not panic
	})
}

// FuzzPrefetchHintCodec: prefetch_hint frames come from *peers* (the
// fleet's speculation side-channel), so like regions they are a trust
// boundary. No byte stream may panic the codec, and every hint that
// decodes must survive a re-encode round trip with its key, region,
// depth, and query intact — a corrupted key must never warm the wrong
// epoch.
func FuzzPrefetchHintCodec(f *testing.F) {
	seed := func(v any) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, v); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	key := RegionKey{Gen: 9, Registry: 4, Name: "homeview", Fingerprint: "S0:p(v0,v1)"}
	seed(Request{Cmd: Cmd{Op: OpPrefetchHint}, Hint: &PrefetchHint{
		Query: "SELECT * FROM homes", Key: key, Region: 3, Deep: true,
	}})
	seed(Request{Cmd: Cmd{Op: OpPrefetchHint}, Hint: &PrefetchHint{Key: key}})
	// Hostile shapes: type confusion on the hint object and its fields.
	f.Add([]byte{0, 0, 0, 10, '{', '"', 'h', 'i', 'n', 't', '"', ':', '1', '}'})
	f.Add([]byte{0, 0, 0, 30, '{', '"', 'h', 'i', 'n', 't', '"', ':', '{', '"', 'r', 'e', 'g', 'i', 'o', 'n', '"', ':', '"', 'x', '"', ',', '"', 'k', 'e', 'y', '"', ':', '1', '}'})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := ReadFrame(bytes.NewReader(data), &req); err == nil && req.Hint != nil {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, Request{Cmd: req.Cmd, Hint: req.Hint}); err == nil {
				var rt Request
				if err := ReadFrame(&buf, &rt); err != nil {
					t.Fatalf("re-decode of re-encoded hint failed: %v", err)
				}
				if rt.Hint == nil || *rt.Hint != *req.Hint {
					t.Fatalf("hint not stable under re-encode: %+v vs %+v", rt.Hint, req.Hint)
				}
			}
		}
		var resp Response
		_ = ReadFrame(bytes.NewReader(data), &resp) // must not panic
	})
}

// TestReadFrameRejectsHostileLength: a length prefix beyond MaxFrame is
// rejected before any allocation or read of the payload.
func TestReadFrameRejectsHostileLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var req Request
	err := ReadFrame(bytes.NewReader(hdr[:]), &req)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame not rejected: %v", err)
	}
}

// TestWriteFrameRejectsOversizedPayload: the writer enforces the same
// cap, so a server cannot emit a frame its peer must refuse.
func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	big := Request{Query: strings.Repeat("x", MaxFrame)}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, big); err == nil {
		t.Fatal("oversized frame written")
	}
}
