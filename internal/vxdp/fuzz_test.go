package vxdp

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// FuzzReadFrame: no byte stream may panic the codec; truncated,
// malformed, and oversized frames must surface as errors.
func FuzzReadFrame(f *testing.F) {
	// A valid frame.
	var ok bytes.Buffer
	if err := WriteFrame(&ok, Request{Cmd: Cmd{Op: OpDown, ID: 7}}); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	// Truncated header, truncated payload, hostile length prefix,
	// valid length with garbage JSON.
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 9, '{'})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add([]byte{0, 0, 0, 2, 'n', 'o'})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		_ = ReadFrame(bytes.NewReader(data), &req) // must not panic
	})
}

// TestReadFrameRejectsHostileLength: a length prefix beyond MaxFrame is
// rejected before any allocation or read of the payload.
func TestReadFrameRejectsHostileLength(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	var req Request
	err := ReadFrame(bytes.NewReader(hdr[:]), &req)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame not rejected: %v", err)
	}
}

// TestWriteFrameRejectsOversizedPayload: the writer enforces the same
// cap, so a server cannot emit a frame its peer must refuse.
func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	big := Request{Query: strings.Repeat("x", MaxFrame)}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, big); err == nil {
		t.Fatal("oversized frame written")
	}
}
