package vxdp

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
)

// Pooled encode/decode scratch. WriteFrame marshals into a pooled
// buffer (header and payload leave in a single Write) and ReadFrame
// reads payloads into pooled byte slices; encoding/json copies every
// string it decodes, so recycling the payload after Unmarshal is safe.
// The pools turn the per-frame garbage of a navigation-heavy session
// into a handful of steady-state buffers.

var pooledBuffers atomic.Bool

func init() { pooledBuffers.Store(true) }

// SetPooledBuffers toggles the pooled frame buffers (default on). Off,
// WriteFrame/ReadFrame allocate per call, reproducing the historical
// behavior byte for byte — the frames themselves are identical either
// way.
func SetPooledBuffers(on bool) { pooledBuffers.Store(on) }

var (
	bufGets atomic.Int64 // total pool fetches
	bufNews atomic.Int64 // fetches that had to allocate
)

// BufferPoolStats reports total pooled-buffer fetches and how many of
// them had to allocate, for /metrics; gets-news fetches were served by
// reuse.
func BufferPoolStats() (gets, news int64) {
	return bufGets.Load(), bufNews.Load()
}

// keepCap bounds what the pools retain: the occasional oversized frame
// is returned to the collector rather than pinned forever.
const keepCap = 1 << 16

// frameEncoder bundles the scratch buffer with a json.Encoder bound to
// it, so the encoder itself is recycled along with the bytes.
type frameEncoder struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	bufNews.Add(1)
	fe := &frameEncoder{}
	fe.enc = json.NewEncoder(&fe.buf)
	return fe
}}

func getEncBuf() *frameEncoder {
	bufGets.Add(1)
	fe := encPool.Get().(*frameEncoder)
	fe.buf.Reset()
	return fe
}

func putEncBuf(fe *frameEncoder) {
	if fe.buf.Cap() <= keepCap {
		encPool.Put(fe)
	}
}

var payloadPool = sync.Pool{New: func() any {
	bufNews.Add(1)
	s := make([]byte, 0, 4096)
	return &s
}}

func getPayload(n int) *[]byte {
	bufGets.Add(1)
	p := payloadPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

func putPayload(p *[]byte) {
	if cap(*p) <= keepCap {
		payloadPool.Put(p)
	}
}
