// Package vxdp implements VXDP, the Virtual XML Document Protocol: the
// client↔mediator wire protocol that carries the DOM-VXD command set of
// Section 2 (root, down, right, fetch, select σ) across a network, so a
// client can navigate a *remote* virtual answer document exactly as it
// navigates a local one (Fig. 1's client/mediator boundary).
//
// A VXDP conversation is sessionful: the client opens a view by sending
// its XMAS query text, the server compiles it against its configured
// sources and view catalogue, and subsequent navigation commands are
// answered from the session's private lazy-mediator tree. Node
// identifiers never cross the wire in their native (Skolem) form;
// instead the server issues per-session uint64 handles, so the protocol
// is independent of how a particular engine encodes association
// information.
//
// # Message grammar
//
// Every message is one frame: a 4-byte big-endian length prefix
// followed by a JSON object of at most MaxFrame bytes. Requests are
//
//	{"op":"open","query":Q}          compile XMAS query Q, open the view
//	{"op":"root"}                    → handle of the answer root
//	{"op":"down","id":H}             → handle of H's first child, or ⊥
//	{"op":"right","id":H}            → handle of H's right sibling, or ⊥
//	{"op":"fetch","id":H}            → label of H
//	{"op":"select","id":H,           → first sibling (from H itself when
//	 "label":L,"self":B}               "self") labeled L, or ⊥
//	{"op":"batch","cmds":[C…]}       pipeline: all commands, one frame
//	{"op":"stats"}                   → server introspection snapshot
//	{"op":"trace"}                   → spans recorded since the last trace
//	{"op":"slow"}                    → the node's slow-navigation ring
//	{"op":"close"}                   end the session
//
// Any request may additionally carry "trace_ctx", a fleet trace context
// (see trace.Context): the server then parents the spans behind the
// command under the caller's span and returns them in the response's
// "spans" block, so one navigation that hops across a mediator fleet
// stitches into a single forest. Untraced sessions never carry either
// field — they cost zero bytes and zero allocations.
//
// Cluster peers (mixd -cluster) speak five more ops on ordinary
// sessions — the L2 region protocol, the health probe, and the
// speculative-prefetch hint:
//
//	{"op":"ping"}                    → ok + the node's cache generation
//	{"op":"region_get","region":K}   → explored region under key K, or ⊥
//	{"op":"region_put","region":K,"tree":R}   merge region R into K
//	{"op":"invalidate","gen":G}      raise the cache generation to G
//	{"op":"prefetch_hint","hint":H}  warm a predicted region (advisory)
//
// A prefetch hint is fire-and-forget advice: the sender predicts that a
// client will engage region H.region of the view H.key next, and asks
// the key's ring owner to warm it speculatively. The receiver may drop
// the hint for any reason (prefetch off, budget, stale generation) and
// still answers ok, so a lost hint costs the sender nothing.
//
// and responses are
//
//	{"ok":true,"id":H}               a node handle
//	{"ok":false}                     ⊥ (no such child/sibling)
//	{"ok":true,"label":L}            a fetch result
//	{"results":[R…]}                 batch: one result per command
//	{"stats":{…}}                    a Stats snapshot
//	{"trace":[S…]}                   a span forest (see internal/trace)
//	{"error":MSG}                    command failed
//
// A batch command C is a request object whose "ref" field, when
// present, names the 0-based index of an *earlier command in the same
// batch* whose result node it navigates from; ⊥ propagates through a
// batch without error (down/right/select of ⊥ is ⊥, fetch of ⊥ is
// ok=false), so a client can speculatively pipeline a whole exploration
// — e.g. root, down, then k alternating fetch/right steps — in a single
// round trip.
package vxdp

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"mix/internal/regioncache"
	"mix/internal/trace"
)

// MaxFrame bounds a single VXDP frame (requests carry at most a query
// text; responses at most a label or a batch of them). Length prefixes
// beyond the cap are rejected before any allocation, so a hostile
// header cannot balloon memory.
const MaxFrame = 1 << 20

// MaxBatch bounds the number of commands in one batch frame.
const MaxBatch = 4096

// Protocol operation names.
const (
	OpOpen   = "open"
	OpRoot   = "root"
	OpDown   = "down"
	OpRight  = "right"
	OpFetch  = "fetch"
	OpSelect = "select"
	OpBatch  = "batch"
	OpStats  = "stats"
	OpTrace  = "trace"
	OpSlow   = "slow"
	OpClose  = "close"

	// Cluster operations (mixd -cluster; see internal/cluster). ping is
	// the peer health probe; region_get/region_put move explored regions
	// between the nodes' caches (the L2 tier); invalidate broadcasts a
	// generation bump so every node's cache lands on the same epoch.
	OpPing       = "ping"
	OpRegionGet  = "region_get"
	OpRegionPut  = "region_put"
	OpInvalidate = "invalidate"
	// OpPrefetchHint asks a peer to speculatively warm a predicted
	// region of a view it owns (advisory; see PrefetchHint).
	OpPrefetchHint = "prefetch_hint"
)

// Cmd is one navigation command, either standalone or as a batch step.
type Cmd struct {
	Op string `json:"op"`
	// ID is a node handle previously issued by the server (root needs
	// none).
	ID uint64 `json:"id,omitempty"`
	// Ref, in a batch, names the 0-based index of an earlier step whose
	// result node this command navigates from (instead of ID).
	Ref *int `json:"ref,omitempty"`
	// Label and Self parameterize select: advance to the first sibling
	// labeled Label, starting from the node itself when Self is true.
	Label string `json:"label,omitempty"`
	Self  bool   `json:"self,omitempty"`
}

// RegionKey identifies one cached region on the wire: the full
// regioncache key, generation included, so a peer can only ever answer
// with data from the exact epoch the asker is pinned to.
type RegionKey struct {
	Gen         uint64 `json:"gen"`
	Registry    uint64 `json:"reg"`
	Name        string `json:"name"`
	Fingerprint string `json:"fp"`
}

// PrefetchHint is the prefetch_hint payload: everything a peer needs to
// warm one predicted region of a view it owns. Query lets the receiver
// compile the view itself (hints never carry node handles — they are
// session-free); Key pins the exact cache epoch, so a hint from a node
// on an older generation is silently dropped rather than resurrecting
// invalidated data.
type PrefetchHint struct {
	Query  string    `json:"query"`
	Key    RegionKey `json:"key"`
	Region int       `json:"region"`
	Deep   bool      `json:"deep,omitempty"`
}

// Request is a client→server frame.
type Request struct {
	Cmd
	Query string `json:"query,omitempty"` // open
	Cmds  []Cmd  `json:"cmds,omitempty"`  // batch
	// Region keys a region_get/region_put; Tree carries the region_put
	// payload (the asker's explored region, merged into the owner's L1).
	Region *RegionKey          `json:"region,omitempty"`
	Tree   *regioncache.Region `json:"tree,omitempty"`
	// Semantic, on a region_get, asks only for *fully explored* regions:
	// the asker wants to answer a subsumed query from the region, which
	// is sound only when no part of it is still unexplored. A partial
	// region is a miss under this form.
	Semantic bool `json:"semantic,omitempty"`
	// Gen is the target generation of an invalidate broadcast.
	Gen uint64 `json:"gen,omitempty"`
	// Hint carries a prefetch_hint: advisory, fire-and-forget.
	Hint *PrefetchHint `json:"hint,omitempty"`
	// Proxied marks an open forwarded by a cluster peer: the receiver
	// must serve it locally, never re-proxy or redirect, so a
	// misconfigured ring cannot bounce a session between nodes.
	Proxied bool `json:"proxied,omitempty"`
	// TraceCtx, when non-nil, asks the server to record the spans
	// behind this command under the caller's span and return them in
	// Response.Spans. Absent on untraced sessions (zero wire bytes).
	TraceCtx *trace.Context `json:"trace_ctx,omitempty"`
}

// NavResult is the outcome of one navigation command.
type NavResult struct {
	// OK reports whether the command produced a node (or, for fetch and
	// open, succeeded). OK=false with empty Err is ⊥.
	OK    bool   `json:"ok,omitempty"`
	ID    uint64 `json:"id,omitempty"`
	Label string `json:"label,omitempty"`
	Err   string `json:"error,omitempty"`
}

// Response is a server→client frame.
type Response struct {
	NavResult
	Results []NavResult   `json:"results,omitempty"` // batch
	Stats   *Stats        `json:"stats,omitempty"`   // stats
	Trace   []*trace.Span `json:"trace,omitempty"`   // trace
	// Redirect, on an open response from a clustered server in redirect
	// mode, names the owner node's address: the client should redial
	// there and resend the open. Redirect-unaware clients never see it —
	// the server proxies for them instead.
	Redirect string `json:"redirect,omitempty"`
	// Tree is a region_get hit: the owner's explored region for the
	// requested key (absent = miss).
	Tree *regioncache.Region `json:"tree,omitempty"`
	// Gen is the responder's cache generation (ping, invalidate).
	Gen uint64 `json:"gen,omitempty"`
	// Spans answers a request that carried a TraceCtx: the span forest
	// recorded while serving it, roots parented under the caller's
	// span. The caller stitches it into its own forest (trace.Stitch).
	Spans []*trace.Span `json:"spans,omitempty"`
	// Slow answers the slow command: the node's slow-navigation flight
	// ring, oldest first.
	Slow []SlowNav `json:"slow,omitempty"`
}

// SlowNav is one retained slow navigation on the wire: when it
// completed (wall clock), on which node, how slow it was, and the full
// (possibly stitched) span tree behind it.
type SlowNav struct {
	Seq    uint64      `json:"seq"`
	UnixMs int64       `json:"unix_ms"`
	Node   string      `json:"node,omitempty"`
	DurNs  int64       `json:"dur_ns"`
	Root   *trace.Span `json:"root"`
}

// Stats is the server introspection snapshot returned by the stats
// command (and by server.Server.Stats for in-process callers).
type Stats struct {
	SessionsActive  int64 `json:"sessions_active"`
	SessionsTotal   int64 `json:"sessions_total"`
	SessionsEvicted int64 `json:"sessions_evicted"` // idle/lifetime timeouts
	SessionsDenied  int64 `json:"sessions_denied"`  // over the connection limit
	Msgs            int64 `json:"msgs"`             // request frames served
	Navs            int64 `json:"navs"`             // navigation commands answered
	Down            int64 `json:"down"`
	Right           int64 `json:"right"`
	Fetch           int64 `json:"fetch"`
	Select          int64 `json:"select"`
	Root            int64 `json:"root"`
	// Session, present only in responses to the stats command, describes
	// the asking session itself.
	Session *SessionStats `json:"session,omitempty"`
	// Cache, present when the server runs a shared region cache,
	// reports cross-session cache effectiveness.
	Cache *CacheStats `json:"cache,omitempty"`
	// Pool, present when the server pools engines across sessions,
	// reports engine reuse.
	Pool *PoolStats `json:"pool,omitempty"`
	// Parallel, present when any join has derived its inputs
	// concurrently, reports the parallel-derivation counters.
	Parallel *ParallelStats `json:"parallel,omitempty"`
	// Batch, present when the batch-at-a-time pipeline has moved any
	// bindings, reports the vectorized-execution counters.
	Batch *BatchStats `json:"batch,omitempty"`
	// Cluster, present when the server runs as a cluster node, reports
	// ring routing, proxying, and L2 region-cache traffic.
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// Prefetch, present when the server runs the speculative prefetcher
	// (mixd -prefetch), reports prediction and drain effectiveness.
	Prefetch *PrefetchStats `json:"prefetch,omitempty"`
}

// PrefetchStats reports the speculative prefetcher's effectiveness: how
// many drains it issued, how the predictions resolved against the
// client's actual next engagement, and what the speculation cost in
// navigations at the speculative answer boundary. Issued − Hits −
// Wasted − Cancelled is the number still unresolved (inflight or
// awaiting the client's next move).
type PrefetchStats struct {
	Issued    int64 `json:"issued"`
	Hits      int64 `json:"hits"`      // client engaged the predicted region
	Wasted    int64 `json:"wasted"`    // client engaged a different region
	Cancelled int64 `json:"cancelled"` // drain cancelled (demand pre-empt, epoch bump)
	Navs      int64 `json:"navs"`      // speculative answer-boundary navigations
	HintsSent int64 `json:"hints_sent,omitempty"`
	HintsRecv int64 `json:"hints_recv,omitempty"`
	Inflight  int64 `json:"inflight,omitempty"` // drains currently running
}

// ClusterStats mirrors cluster.Stats on the wire: how sessions were
// routed across the ring, how the peer fleet is doing, and how the L2
// region tier performed.
type ClusterStats struct {
	Self       string `json:"self"`
	Members    int64  `json:"members"`
	PeersUp    int64  `json:"peers_up"`
	PeersDown  int64  `json:"peers_down"`
	OwnedLocal int64  `json:"owned_local"` // opens whose key this node owns
	Proxied    int64  `json:"proxied"`     // commands forwarded to an owner
	Redirected int64  `json:"redirected"`  // opens answered with a redirect
	Degraded   int64  `json:"degraded"`    // opens served locally because the owner was down
	L2Hits     int64  `json:"l2_hits"`     // entry fills answered by a peer
	L2Misses   int64  `json:"l2_misses"`   // peer fetches that found nothing
	L2Serves   int64  `json:"l2_serves"`   // region_get requests answered with a region
	L2Fills    int64  `json:"l2_fills"`    // region_put regions merged from peers
	InvalSent  int64  `json:"inval_sent"`  // invalidation broadcasts fanned out
	InvalRecv  int64  `json:"inval_recv"`  // invalidation broadcasts applied
	// SemanticLocal counts routed opens served on this node without
	// proxy or redirect because a subsumed complete region answered the
	// query outright (possibly after a semantic region_get to the
	// superset's owner).
	SemanticLocal int64 `json:"semantic_local"` // opens short-circuited by the semantic tier
	// Routes breaks down session-routing latency by decision mode
	// (proxy / redirect / local), mirroring the
	// mix_cluster_route_duration_seconds histograms.
	Routes []RouteLatency `json:"routes,omitempty"`
}

// RouteLatency summarizes one routing mode's open-handling latency.
type RouteLatency struct {
	Mode  string `json:"mode"`
	Count int64  `json:"count"`
	P50Us int64  `json:"p50_us"`
	P99Us int64  `json:"p99_us"`
}

// ParallelStats mirrors core.ParallelStats on the wire: joins whose two
// inputs were drained concurrently, and how those drains went.
type ParallelStats struct {
	Joins    int64 `json:"joins"`
	Inline   int64 `json:"inline"`   // drains run inline (worker pool saturated)
	Errors   int64 `json:"errors"`   // drains failed with their own error
	Canceled int64 `json:"canceled"` // drains cancelled by the sibling's error
}

// BatchStats mirrors core.BatchStats on the wire: how many batches the
// vectorized pipeline moved, the bindings they carried, and how many
// full materializations were pre-drained batch-at-a-time.
type BatchStats struct {
	Batches   int64 `json:"batches"`
	Bindings  int64 `json:"bindings"`
	Predrains int64 `json:"predrains"`
}

// SourceStats describes one LXP-buffered source of the asking session:
// its fill/round-trip accounting and the health of its prefetcher.
// Batched fills make RoundTrips smaller than Fills; a non-empty
// LastPrefetchError means background prefetching has been failing even
// though demand navigation may still succeed.
type SourceStats struct {
	Name              string `json:"name"`
	Fills             int64  `json:"fills"`
	DemandFills       int64  `json:"demand_fills"`
	PrefetchFills     int64  `json:"prefetch_fills"`
	RoundTrips        int64  `json:"round_trips"`
	BatchedFills      int64  `json:"batched_fills"`
	PendingHoles      int64  `json:"pending_holes"`
	PrefetchErrors    int64  `json:"prefetch_errors"`
	LastPrefetchError string `json:"last_prefetch_error,omitempty"`
}

// CacheStats mirrors the server's region-cache totals on the wire (see
// internal/regioncache): hits are navigations answered with zero source
// navigations, bytes_saved the label bytes served from the cache.
type CacheStats struct {
	Generation uint64 `json:"generation"`
	Entries    int64  `json:"entries"`
	Bytes      int64  `json:"bytes"`
	Hits       int64  `json:"hits"`
	Misses     int64  `json:"misses"`
	BytesSaved int64  `json:"bytes_saved"`
	Evictions  int64  `json:"evictions"`
	// The semantic tier (plan containment; DESIGN.md §14): queries
	// answered from a subsuming cached plan's region, queries that
	// found no usable superset, candidate plans examined, and
	// candidates skipped because their region was not fully explored.
	SemanticHits            int64 `json:"semantic_hits"`
	SemanticMisses          int64 `json:"semantic_misses"`
	SemanticCandidates      int64 `json:"semantic_candidates"`
	SemanticIncompleteSkips int64 `json:"semantic_incomplete_skips"`
	// InternedBytes is the cache's key-string vocabulary (charged once
	// per distinct name/fingerprint, never released).
	InternedBytes int64 `json:"interned_bytes"`
	// The speculative class: entries published by the prefetcher that no
	// demand navigation has touched yet. They are accounted separately
	// and evicted before any demand entry under pressure.
	SpecEntries int64 `json:"spec_entries,omitempty"`
	SpecBytes   int64 `json:"spec_bytes,omitempty"`
}

// PoolStats reports cross-session engine reuse.
type PoolStats struct {
	Idle    int64 `json:"idle"`    // engines parked, ready for the next session
	Created int64 `json:"created"` // engines built by the factory
	Reused  int64 `json:"reused"`  // sessions served by a recycled engine
}

// SessionStats describes one session from the server's point of view:
// how many frames it has sent and how its navigations break down. Navs
// counts client-boundary commands (what the session asked of its
// virtual answer), not the source fan-out behind them.
type SessionStats struct {
	ID       uint64 `json:"id"`
	UptimeMs int64  `json:"uptime_ms"`
	Msgs     int64  `json:"msgs"`
	Opens    int64  `json:"opens"`
	Navs     int64  `json:"navs"`
	Down     int64  `json:"down"`
	Right    int64  `json:"right"`
	Fetch    int64  `json:"fetch"`
	Select   int64  `json:"select"`
	Root     int64  `json:"root"`
	// Sources, present when the session's mediator has LXP-buffered
	// sources, reports their per-source fill accounting (sorted by
	// name).
	Sources []SourceStats `json:"sources,omitempty"`
}

func (s Stats) String() string {
	return fmt.Sprintf("sessions: active=%d total=%d evicted=%d denied=%d | msgs=%d navs=%d (d=%d r=%d f=%d sel=%d root=%d)",
		s.SessionsActive, s.SessionsTotal, s.SessionsEvicted, s.SessionsDenied,
		s.Msgs, s.Navs, s.Down, s.Right, s.Fetch, s.Select, s.Root)
}

// WriteFrame writes v as one length-prefixed JSON frame. With pooled
// buffers on (the default), header and payload are assembled in a
// recycled buffer and leave in a single Write.
func WriteFrame(w io.Writer, v any) error {
	if !pooledBuffers.Load() {
		payload, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if len(payload) > MaxFrame {
			return fmt.Errorf("vxdp: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err = w.Write(payload)
		return err
	}
	fe := getEncBuf()
	defer putEncBuf(fe)
	fe.buf.Write([]byte{0, 0, 0, 0})
	if err := fe.enc.Encode(v); err != nil {
		return err
	}
	// Encode appends a newline that json.Marshal would not produce;
	// drop it so the frame bytes are identical to the unpooled path.
	frame := fe.buf.Bytes()
	frame = frame[:len(frame)-1]
	n := len(frame) - 4
	if n > MaxFrame {
		return fmt.Errorf("vxdp: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	binary.BigEndian.PutUint32(frame[:4], uint32(n))
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed JSON frame into v. Truncated,
// malformed, and oversized frames return errors; no input can panic.
// With pooled buffers on, the payload lands in a recycled slice —
// encoding/json copies everything it decodes, so v never aliases it.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("vxdp: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	if !pooledBuffers.Load() {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return err
		}
		return json.Unmarshal(payload, v)
	}
	p := getPayload(int(n))
	defer putPayload(p)
	if _, err := io.ReadFull(r, *p); err != nil {
		return err
	}
	return json.Unmarshal(*p, v)
}
