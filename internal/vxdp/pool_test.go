package vxdp

import (
	"bytes"
	"testing"
)

// TestPooledFramesByteIdentical: the pooled WriteFrame path must emit
// exactly the bytes of the historical per-call-allocation path, and
// both ReadFrame paths must decode them identically.
func TestPooledFramesByteIdentical(t *testing.T) {
	defer SetPooledBuffers(true)
	values := []any{
		Request{Cmd: Cmd{Op: OpOpen}, Query: "b[./bib/book]{./bib/book}"},
		Request{Cmd: Cmd{Op: OpSelect, ID: 7, Label: "a<b&c", Self: true}},
		Response{NavResult: NavResult{OK: true, Label: "héllo\x01"}},
		Response{Results: []NavResult{{OK: true, ID: 3}, {}, {Err: "boom"}}},
	}
	for _, v := range values {
		var pooled, plain bytes.Buffer
		SetPooledBuffers(true)
		if err := WriteFrame(&pooled, v); err != nil {
			t.Fatal(err)
		}
		SetPooledBuffers(false)
		if err := WriteFrame(&plain, v); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pooled.Bytes(), plain.Bytes()) {
			t.Fatalf("pooled frame diverges for %+v\npooled: %q\n plain: %q", v, pooled.Bytes(), plain.Bytes())
		}
		var a, b Response
		SetPooledBuffers(true)
		if err := ReadFrame(bytes.NewReader(pooled.Bytes()), &a); err != nil {
			t.Fatal(err)
		}
		SetPooledBuffers(false)
		if err := ReadFrame(bytes.NewReader(plain.Bytes()), &b); err != nil {
			t.Fatal(err)
		}
	}
	gets, news := BufferPoolStats()
	if gets == 0 || news > gets {
		t.Fatalf("implausible pool stats: gets=%d news=%d", gets, news)
	}
}

func BenchmarkWriteFramePooled(b *testing.B) {
	resp := Response{Results: []NavResult{{OK: true, ID: 3}, {OK: true, Label: "book"}, {}}}
	SetPooledBuffers(true)
	var sink bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink.Reset()
		if err := WriteFrame(&sink, resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteFrameUnpooled(b *testing.B) {
	resp := Response{Results: []NavResult{{OK: true, ID: 3}, {OK: true, Label: "book"}, {}}}
	SetPooledBuffers(false)
	defer SetPooledBuffers(true)
	var sink bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink.Reset()
		if err := WriteFrame(&sink, resp); err != nil {
			b.Fatal(err)
		}
	}
}
