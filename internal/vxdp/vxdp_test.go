package vxdp_test

// Client/protocol tests against a live in-process server (the server
// package is the only VXDP speaker, so the protocol is exercised
// end-to-end over a loopback listener).

import (
	"bytes"
	"encoding/binary"
	"net"
	"strings"
	"testing"

	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/vxdp"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

const joinQuery = `
CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2`

// startServer runs a mixd instance over the homes/schools workload on a
// loopback listener and returns its address.
func startServer(t *testing.T, opts ...server.Option) (*server.Server, string) {
	t.Helper()
	homes, schools := workload.HomesSchools(12, 12, 4, 7)
	factory := func(rc *regioncache.Cache) (*mediator.Mediator, error) {
		m := mediator.New(mediator.DefaultOptions())
		m.SetRegionCache(rc)
		m.RegisterTree("homesSrc", homes)
		m.RegisterTree("schoolsSrc", schools)
		return m, nil
	}
	srv, err := server.New(factory, opts...)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		l.Close()
		<-done
	})
	return srv, l.Addr().String()
}

func dialOpen(t *testing.T, addr, query string) *vxdp.Client {
	t.Helper()
	c, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Open(query); err != nil {
		t.Fatal(err)
	}
	return c
}

// localAnswer evaluates the query in-process for comparison.
func localAnswer(t *testing.T, query string) *xmltree.Tree {
	t.Helper()
	homes, schools := workload.HomesSchools(12, 12, 4, 7)
	m := mediator.New(mediator.DefaultOptions())
	m.RegisterTree("homesSrc", homes)
	m.RegisterTree("schoolsSrc", schools)
	res, err := m.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func TestRemoteNavigationEqualsLocal(t *testing.T) {
	_, addr := startServer(t)
	c := dialOpen(t, addr, joinQuery)
	got, err := nav.Materialize(c)
	if err != nil {
		t.Fatal(err)
	}
	want := localAnswer(t, joinQuery)
	if xmltree.MarshalXML(got) != xmltree.MarshalXML(want) {
		t.Fatalf("remote ≠ local:\nremote: %s\nlocal:  %s",
			xmltree.MarshalXML(got), xmltree.MarshalXML(want))
	}
}

func TestClientIsADocument(t *testing.T) {
	// The mediator.Element veneer and the exploration helpers must work
	// over the wire unchanged.
	_, addr := startServer(t)
	c := dialOpen(t, addr, joinQuery)
	root, err := mediator.Wrap(c)
	if err != nil {
		t.Fatal(err)
	}
	name, err := root.Name()
	if err != nil {
		t.Fatal(err)
	}
	if name != "answer" {
		t.Fatalf("root = %q, want answer", name)
	}
	first, err := root.FirstChild()
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("answer has no children")
	}
	partial, err := nav.ExploreFirst(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := localAnswer(t, joinQuery)
	if len(want.Children) > 2 {
		n := len(partial.Children)
		if n == 0 || !partial.Children[n-1].IsHole() {
			t.Fatalf("partial exploration should end in a hole: %s", xmltree.MarshalXML(partial))
		}
	}
}

func TestSelectLabelAndPath(t *testing.T) {
	_, addr := startServer(t)
	c := dialOpen(t, addr, joinQuery)
	// nav.Path uses nav.Select, which falls back to an r/f scan over
	// the wire; SelectLabel does it in one round trip. Both must agree.
	p, err := nav.Path(c, "med_home", "home", "zip")
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("path answer.med_home.home.zip not found")
	}
	root, err := c.Root()
	if err != nil {
		t.Fatal(err)
	}
	ch, err := c.Down(root)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := c.SelectLabel(ch, "med_home", true)
	if err != nil {
		t.Fatal(err)
	}
	if sel == nil {
		t.Fatal("SelectLabel(med_home) = ⊥")
	}
	l, err := c.Fetch(sel)
	if err != nil {
		t.Fatal(err)
	}
	if l != "med_home" {
		t.Fatalf("selected label = %q", l)
	}
	// A label that never occurs: ⊥, not an error.
	none, err := c.SelectLabel(ch, "nosuch", true)
	if err != nil {
		t.Fatal(err)
	}
	if none != nil {
		t.Fatal("SelectLabel(nosuch) found a node")
	}
}

func TestBatchPipelines(t *testing.T) {
	_, addr := startServer(t)
	c := dialOpen(t, addr, joinQuery)

	// Scan the first k child labels one command per frame…
	k := 5
	singles, err := nav.Labels(c, k)
	if err != nil {
		t.Fatal(err)
	}
	before := c.RoundTrips()

	// …then the same exploration as one batch frame.
	b := c.NewBatch()
	root := b.Root()
	ch := b.Down(root)
	fetches := make([]vxdp.Ref, 0, k)
	for i := 0; i < k; i++ {
		fetches = append(fetches, b.Fetch(ch))
		ch = b.Right(ch)
	}
	results, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RoundTrips() - before; got != 1 {
		t.Fatalf("batch took %d round trips, want 1", got)
	}
	var batched []string
	for _, f := range fetches {
		if results[f].OK {
			batched = append(batched, results[f].Label)
		}
	}
	if strings.Join(batched, ",") != strings.Join(singles, ",") {
		t.Fatalf("batched labels %v ≠ singles %v", batched, singles)
	}
}

func TestBatchBottomPropagates(t *testing.T) {
	_, addr := startServer(t)
	// A view with a single leaf-ish document: scan far past the end.
	c := dialOpen(t, addr, joinQuery)
	b := c.NewBatch()
	root := b.Root()
	ch := b.Down(root)
	for i := 0; i < 100; i++ {
		b.Fetch(ch)
		ch = b.Right(ch)
	}
	results, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The tail of the scan must be ⊥, never an error.
	last := results[len(results)-1]
	if last.OK {
		t.Fatal("scan of 100 siblings should have fallen off the document")
	}
}

func TestBatchAt(t *testing.T) {
	_, addr := startServer(t)
	c := dialOpen(t, addr, joinQuery)
	root, err := c.Root()
	if err != nil {
		t.Fatal(err)
	}
	b := c.NewBatch()
	r := b.At(root)
	f := b.Fetch(b.Down(r))
	results, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !results[f].OK || results[f].Label != "med_home" {
		t.Fatalf("batch At+Down+Fetch = %+v", results[f])
	}
}

func TestForeignIDRejected(t *testing.T) {
	_, addr := startServer(t)
	c1 := dialOpen(t, addr, joinQuery)
	c2 := dialOpen(t, addr, joinQuery)
	root1, err := c1.Root()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Down(root1); err == nil {
		t.Fatal("ID of one client accepted by another")
	}
	if _, err := c2.Down("bogus"); err == nil {
		t.Fatal("arbitrary ID accepted")
	}
}

func TestOpenErrors(t *testing.T) {
	_, addr := startServer(t)
	c, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Navigation before open: error, session stays usable.
	if _, err := c.Root(); err == nil {
		t.Fatal("root before open succeeded")
	}
	if err := c.Open("NOT XMAS"); err == nil {
		t.Fatal("malformed query accepted")
	}
	if err := c.Open("CONSTRUCT $X {} WHERE nosuchsrc a $X"); err == nil {
		t.Fatal("query over unknown source accepted")
	}
	// A good open after failures still works, and re-opening replaces
	// the session's view.
	if err := c.Open(joinQuery); err != nil {
		t.Fatal(err)
	}
	if err := c.Open(joinQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Root(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsOverWire(t *testing.T) {
	srv, addr := startServer(t)
	c := dialOpen(t, addr, joinQuery)
	if _, err := nav.Materialize(c); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionsActive != 1 || st.SessionsTotal != 1 {
		t.Fatalf("sessions: %+v", st)
	}
	if st.Navs == 0 || st.Down == 0 || st.Fetch == 0 {
		t.Fatalf("no navigations counted: %+v", st)
	}
	if st.Msgs == 0 {
		t.Fatalf("no messages counted: %+v", st)
	}
	// In-process snapshot agrees.
	if got := srv.Stats(); got.SessionsTotal != 1 || got.Navs < st.Navs {
		t.Fatalf("server snapshot %+v vs wire %+v", got, st)
	}
}

// TestMalformedFramesDoNotKillServer feeds hostile bytes to the
// listener; the server must stay up for well-behaved clients.
func TestMalformedFramesDoNotKillServer(t *testing.T) {
	_, addr := startServer(t)

	// Hostile length prefix (4 GiB frame).
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0xFFFFFFF0)
	conn.Write(hdr[:])
	conn.Write(bytes.Repeat([]byte("A"), 1024))
	conn.Close()

	// Garbage JSON inside a valid frame.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("{not json")
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	conn2.Write(hdr[:])
	conn2.Write(payload)
	conn2.Close()

	// A real client still gets served.
	c := dialOpen(t, addr, joinQuery)
	if _, err := nav.Materialize(c); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ref := 2
	req := vxdp.Request{
		Cmd:  vxdp.Cmd{Op: vxdp.OpBatch},
		Cmds: []vxdp.Cmd{{Op: vxdp.OpRoot}, {Op: vxdp.OpDown, Ref: &ref}, {Op: vxdp.OpSelect, ID: 9, Label: "x", Self: true}},
	}
	var buf bytes.Buffer
	if err := vxdp.WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	var got vxdp.Request
	if err := vxdp.ReadFrame(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != vxdp.OpBatch || len(got.Cmds) != 3 || *got.Cmds[1].Ref != 2 ||
		got.Cmds[2].Label != "x" || !got.Cmds[2].Self {
		t.Fatalf("round trip mangled request: %+v", got)
	}
}
