package vxdp_test

// Fleet-tracing protocol tests: the trace_ctx / spans wire fields, the
// client's transparent inject/stitch behaviour, and the zero-byte
// contract for untraced sessions.

import (
	"bytes"
	"strings"
	"testing"

	"mix/internal/nav"
	"mix/internal/server"
	"mix/internal/trace"
	"mix/internal/vxdp"
	"mix/internal/xmltree"
)

// TestUntracedFramesCarryNoTraceBytes pins the opt-in contract at the
// wire level: a session without a tracer must produce frames that are
// byte-identical to the pre-tracing protocol — no "trace_ctx" on
// requests, no "spans" or "slow" on responses.
func TestUntracedFramesCarryNoTraceBytes(t *testing.T) {
	frames := []any{
		vxdp.Request{Cmd: vxdp.Cmd{Op: vxdp.OpOpen}, Query: joinQuery},
		vxdp.Request{Cmd: vxdp.Cmd{Op: vxdp.OpDown, ID: 7}},
		vxdp.Response{NavResult: vxdp.NavResult{OK: true, ID: 9}},
		vxdp.Response{NavResult: vxdp.NavResult{OK: true, Label: "answer"}},
	}
	for _, fr := range frames {
		var buf bytes.Buffer
		if err := vxdp.WriteFrame(&buf, fr); err != nil {
			t.Fatal(err)
		}
		for _, field := range []string{"trace_ctx", "spans", "slow"} {
			if strings.Contains(buf.String(), field) {
				t.Fatalf("untraced frame %+v carries %q: %s", fr, field, buf.String())
			}
		}
	}
}

// TestTracedRoundTripStitchesServerSpans runs a full navigation with a
// client-side recorder against a tracing server: every navigation
// command must come back with the server's span subtree stitched under
// the client's span, tagged with the server's node name — one forest,
// assembled transparently inside the client.
func TestTracedRoundTripStitchesServerSpans(t *testing.T) {
	_, addr := startServer(t, server.WithTrace(true), server.WithNodeName("srv-a"))
	c := dialOpen(t, addr, joinQuery)
	rec := trace.New()
	c.SetTracer(rec)

	got, err := nav.Materialize(c)
	if err != nil {
		t.Fatal(err)
	}
	want := localAnswer(t, joinQuery)
	if xmltree.MarshalXML(got) != xmltree.MarshalXML(want) {
		t.Fatal("traced navigation changed the answer")
	}

	roots := rec.Take()
	if len(roots) == 0 {
		t.Fatal("client recorder captured no spans")
	}
	stitched := 0
	for _, r := range roots {
		if r.Label != trace.ClientLabel {
			t.Fatalf("root label = %q, want %q", r.Label, trace.ClientLabel)
		}
		if len(r.Children) > 0 {
			stitched++
		}
	}
	if stitched == 0 {
		t.Fatal("no client span received a stitched server subtree")
	}
	totals := trace.NodeTotals(roots)
	if totals["srv-a"] == 0 {
		t.Fatalf("no spans attributed to the server node: %v", totals)
	}
}

// TestTracedSessionStillServesTraceOp: the server session's own
// recorder is drained into each traced response, so the legacy trace op
// must still answer (with whatever is left) instead of erroring.
func TestTracedSessionStillServesTraceOp(t *testing.T) {
	_, addr := startServer(t, server.WithTrace(true))
	c := dialOpen(t, addr, joinQuery)
	rec := trace.New()
	c.SetTracer(rec)
	if _, err := nav.Materialize(c); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Trace(); err != nil {
		t.Fatalf("trace op on a fleet-traced session: %v", err)
	}
}

// TestSlowOpEmptyWithoutFlightRecorder: the slow op is part of the
// protocol whether or not the node records slow navigations — a node
// without a flight recorder answers with an empty ring, not an error.
func TestSlowOpEmptyWithoutFlightRecorder(t *testing.T) {
	_, addr := startServer(t) // no tracing → no flight recorder
	c := dialOpen(t, addr, joinQuery)
	slow, err := c.Slow()
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) != 0 {
		t.Fatalf("flightless node returned %d slow records", len(slow))
	}
}

// TestSlowOpReturnsRecordedNavigations: with tracing on and a zero
// slow threshold (record everything), navigations must appear in the
// ring with their span trees attached.
func TestSlowOpReturnsRecordedNavigations(t *testing.T) {
	_, addr := startServer(t,
		server.WithTrace(true),
		server.WithNodeName("srv-a"),
		server.WithSlowNav(0, 8))
	c := dialOpen(t, addr, joinQuery)
	rec := trace.New()
	c.SetTracer(rec)
	if _, err := nav.Materialize(c); err != nil {
		t.Fatal(err)
	}
	slow, err := c.Slow()
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) == 0 {
		t.Fatal("zero-threshold flight recorder captured nothing")
	}
	for _, s := range slow {
		if s.Root == nil {
			t.Fatalf("slow record #%d has no root span", s.Seq)
		}
		if s.Node != "srv-a" {
			t.Fatalf("slow record node = %q, want srv-a", s.Node)
		}
		if s.UnixMs == 0 {
			t.Fatal("slow record has no timestamp")
		}
	}
}
