package vxdp

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/trace"
)

// Client is the client-side endpoint of a VXDP session. It implements
// nav.Document, so everything that can navigate a local virtual answer
// — nav.Materialize, nav.ExploreFirst, the mediator.Element veneer, the
// whole test corpus — can navigate a remote one transparently. Safe for
// concurrent use (requests are serialized on the connection).
//
// Client deliberately does not implement nav.Selector: the wire select
// command matches a *label*, while nav.Predicate is an opaque function.
// nav.Select therefore falls back to an r/f scan over the wire (each
// hop one round trip) — precisely the navigational-complexity penalty
// Section 2 assigns to NC without select. Callers that do have a label
// predicate use SelectLabel (one round trip) or a Batch.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	// rec, when non-nil, makes the session fleet-traced: every
	// navigation opens a local span, injects its trace context into the
	// request, and stitches the spans the server returns under it (see
	// SetTracer). label overrides the span label (trace.ClientLabel
	// when empty).
	rec   *trace.Recorder
	label string

	roundTrips atomic.Int64
}

// nodeID is the client-side nav.ID: the server's uint64 handle bound to
// the issuing client, so foreign IDs are detectable.
type nodeID struct {
	c *Client
	h uint64
}

// Dial connects to a VXDP server (cmd/mixd).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

// Close ends the session (best effort) and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	_ = WriteFrame(c.w, Request{Cmd: Cmd{Op: OpClose}})
	_ = c.w.Flush()
	c.mu.Unlock()
	return c.conn.Close()
}

// RoundTrips returns the number of request frames sent so far — the
// message-count measure the batching experiments compare.
func (c *Client) RoundTrips() int64 { return c.roundTrips.Load() }

// ErrRemote marks errors the server reported in-band: the transport is
// healthy, the request itself failed. Cluster health accounting keys on
// this — errors.Is(err, ErrRemote) means the peer is alive.
var ErrRemote = errors.New("vxdp: remote error")

// SetTracer installs a recorder on the session: every subsequent traced
// command (navigations, batches, region ops — not stats/trace/ping)
// opens a span in rec, rides the wire with its trace context, and gets
// the server-side fan-out stitched under it transparently. A nil rec
// turns tracing back off. The untraced path is untouched — no extra
// bytes on the wire, no allocations.
func (c *Client) SetTracer(rec *trace.Recorder) {
	c.mu.Lock()
	c.rec = rec
	c.mu.Unlock()
}

// SetTraceLabel overrides the label of the spans SetTracer records
// (trace.ClientLabel when empty). Cluster control links use it so peer
// traffic is distinguishable from client navigations.
func (c *Client) SetTraceLabel(label string) {
	c.mu.Lock()
	c.label = label
	c.mu.Unlock()
}

// tracedOp reports whether a command is worth a span on a traced
// session: the ops that do engine or cache work. Introspection
// (stats/trace/slow), the health probe, and close stay span-free.
func tracedOp(op string) bool {
	switch op {
	case OpOpen, OpRoot, OpDown, OpRight, OpFetch, OpSelect, OpBatch,
		OpRegionGet, OpRegionPut, OpInvalidate, OpPrefetchHint:
		return true
	}
	return false
}

func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roundTrips.Add(1)
	if c.rec == nil || !tracedOp(req.Op) {
		return c.exchange(req)
	}
	label := c.label
	if label == "" {
		label = trace.ClientLabel
	}
	sp, ctx := c.rec.BeginContext(label, req.Op)
	if req.TraceCtx == nil {
		req.TraceCtx = &ctx
	}
	resp, err := c.exchange(req)
	if len(resp.Spans) > 0 {
		trace.Stitch(sp, resp.Spans)
		resp.Spans = nil
	}
	c.rec.End(sp)
	return resp, err
}

// exchange performs one request/response cycle. Callers hold c.mu.
func (c *Client) exchange(req Request) (Response, error) {
	if err := WriteFrame(c.w, req); err != nil {
		return Response{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := ReadFrame(c.r, &resp); err != nil {
		return Response{}, err
	}
	if resp.Err != "" {
		return Response{}, fmt.Errorf("%w: %s", ErrRemote, resp.Err)
	}
	return resp, nil
}

// maxRedirects bounds redirect chains on open, so a misconfigured ring
// (two nodes each claiming the other owns a key) cannot loop a client
// forever.
const maxRedirects = 4

// Open compiles the XMAS query on the server and makes its virtual
// answer the session's document. Opening a second view in the same
// session replaces the first (all previously issued handles die).
//
// Against a clustered server in redirect mode, Open transparently
// follows the redirect: it redials the owner node, swaps the session's
// connection, and resends the open there — so every later navigation
// goes straight to the node whose L1 cache holds the view's regions.
func (c *Client) Open(query string) error {
	for hop := 0; ; hop++ {
		resp, err := c.roundTrip(Request{Cmd: Cmd{Op: OpOpen}, Query: query})
		if err != nil {
			return err
		}
		if resp.Redirect == "" {
			return nil
		}
		if hop >= maxRedirects {
			return fmt.Errorf("vxdp: open redirected more than %d times (last to %s)", maxRedirects, resp.Redirect)
		}
		if err := c.redial(resp.Redirect); err != nil {
			return err
		}
	}
}

// redial swaps the session's connection for one to addr (best-effort
// close of the old session first). Handles issued before the swap are
// dead — exactly the open-replaces-view contract.
func (c *Client) redial(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("vxdp: following redirect to %s: %w", addr, err)
	}
	c.mu.Lock()
	old := c.conn
	_ = WriteFrame(c.w, Request{Cmd: Cmd{Op: OpClose}})
	_ = c.w.Flush()
	c.conn = conn
	c.r = bufio.NewReader(conn)
	c.w = bufio.NewWriter(conn)
	c.mu.Unlock()
	_ = old.Close()
	return nil
}

// handle extracts the wire handle of an ID issued by this client.
func (c *Client) handle(p nav.ID) (uint64, error) {
	n, ok := p.(nodeID)
	if !ok || n.c != c {
		return 0, fmt.Errorf("%w: %T", nav.ErrForeignID, p)
	}
	return n.h, nil
}

// node converts a navigation response into a nav.ID (nil for ⊥).
func (c *Client) node(r NavResult) nav.ID {
	if !r.OK {
		return nil
	}
	return nodeID{c: c, h: r.ID}
}

// Root implements nav.Document.
func (c *Client) Root() (nav.ID, error) {
	resp, err := c.roundTrip(Request{Cmd: Cmd{Op: OpRoot}})
	if err != nil {
		return nil, err
	}
	return c.node(resp.NavResult), nil
}

func (c *Client) navigate(op string, p nav.ID) (nav.ID, error) {
	h, err := c.handle(p)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(Request{Cmd: Cmd{Op: op, ID: h}})
	if err != nil {
		return nil, err
	}
	return c.node(resp.NavResult), nil
}

// Down implements nav.Document.
func (c *Client) Down(p nav.ID) (nav.ID, error) { return c.navigate(OpDown, p) }

// Right implements nav.Document.
func (c *Client) Right(p nav.ID) (nav.ID, error) { return c.navigate(OpRight, p) }

// Fetch implements nav.Document.
func (c *Client) Fetch(p nav.ID) (string, error) {
	h, err := c.handle(p)
	if err != nil {
		return "", err
	}
	resp, err := c.roundTrip(Request{Cmd: Cmd{Op: OpFetch, ID: h}})
	if err != nil {
		return "", err
	}
	return resp.Label, nil
}

// SelectLabel issues a wire select: the first sibling of p (p itself
// when fromSelf) whose label is label, in one round trip.
func (c *Client) SelectLabel(p nav.ID, label string, fromSelf bool) (nav.ID, error) {
	h, err := c.handle(p)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(Request{Cmd: Cmd{Op: OpSelect, ID: h, Label: label, Self: fromSelf}})
	if err != nil {
		return nil, err
	}
	return c.node(resp.NavResult), nil
}

// Trace fetches the spans recorded for this session since the last
// Trace call: the server-side fan-out behind the navigations issued in
// between. Returns nil when the server has tracing disabled.
func (c *Client) Trace() ([]*trace.Span, error) {
	resp, err := c.roundTrip(Request{Cmd: Cmd{Op: OpTrace}})
	if err != nil {
		return nil, err
	}
	return resp.Trace, nil
}

// Ping probes the server: a liveness check that also returns the
// server's region-cache generation. It is the cluster health probe.
func (c *Client) Ping() (gen uint64, err error) {
	resp, err := c.roundTrip(Request{Cmd: Cmd{Op: OpPing}})
	if err != nil {
		return 0, err
	}
	return resp.Gen, nil
}

// RegionGet fetches the server's explored region under key (nil = the
// server knows nothing under that exact key).
func (c *Client) RegionGet(key RegionKey) (*regioncache.Region, error) {
	resp, err := c.roundTrip(Request{Cmd: Cmd{Op: OpRegionGet}, Region: &key})
	if err != nil {
		return nil, err
	}
	return resp.Tree, nil
}

// RegionGetComplete is the semantic form of RegionGet: it returns the
// server's region under key only when that region is *fully explored*
// (nil otherwise). The caller intends to answer a subsumed query from
// it, which is sound only without unexplored holes.
func (c *Client) RegionGetComplete(key RegionKey) (*regioncache.Region, error) {
	resp, err := c.roundTrip(Request{Cmd: Cmd{Op: OpRegionGet}, Region: &key, Semantic: true})
	if err != nil {
		return nil, err
	}
	return resp.Tree, nil
}

// RegionPut merges an explored region into the server's cache under
// key. The server ignores puts for generations it has moved past.
func (c *Client) RegionPut(key RegionKey, tree *regioncache.Region) error {
	_, err := c.roundTrip(Request{Cmd: Cmd{Op: OpRegionPut}, Region: &key, Tree: tree})
	return err
}

// PrefetchHint advises the server to speculatively warm a predicted
// region of a view it owns. Purely advisory: the server may drop it for
// any reason and still answer ok, so a nil error only means the hint
// was delivered, not that a drain ran.
func (c *Client) PrefetchHint(h PrefetchHint) error {
	_, err := c.roundTrip(Request{Cmd: Cmd{Op: OpPrefetchHint}, Hint: &h})
	return err
}

// Invalidate asks the server to raise its region-cache generation to
// gen (a no-op when it is already there or past it) and returns the
// server's resulting generation.
func (c *Client) Invalidate(gen uint64) (uint64, error) {
	resp, err := c.roundTrip(Request{Cmd: Cmd{Op: OpInvalidate}, Gen: gen})
	if err != nil {
		return 0, err
	}
	return resp.Gen, nil
}

// Slow fetches the server's slow-navigation flight ring: the last
// retained root spans whose latency met the server's -slow-ms
// threshold, oldest first. Returns nil when the server has tracing
// disabled or nothing slow has been recorded yet.
func (c *Client) Slow() ([]SlowNav, error) {
	resp, err := c.roundTrip(Request{Cmd: Cmd{Op: OpSlow}})
	if err != nil {
		return nil, err
	}
	return resp.Slow, nil
}

// Stats fetches the server's introspection snapshot.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.roundTrip(Request{Cmd: Cmd{Op: OpStats}})
	if err != nil {
		return Stats{}, err
	}
	if resp.Stats == nil {
		return Stats{}, errors.New("vxdp: stats response without stats")
	}
	return *resp.Stats, nil
}

// --- batched navigation ---------------------------------------------------

// Ref names the result of an earlier step of a Batch.
type Ref int

// Batch accumulates a navigation command sequence to be pipelined to
// the server in a single round trip. Steps may navigate from the result
// of any earlier step (the Ref returned when the step was added) or
// from an already-known node (At). ⊥ propagates silently, so a batch
// may overshoot — e.g. scan more siblings than exist — and simply get
// ok=false results back for the steps that fell off the document.
//
//	b := client.NewBatch()
//	root := b.Root()
//	ch := b.Down(root)
//	for i := 0; i < k; i++ { b.Fetch(ch); ch = b.Right(ch) }
//	results, err := b.Run() // one frame each way
type Batch struct {
	c    *Client
	cmds []Cmd
	err  error
}

// NewBatch starts an empty batch.
func (c *Client) NewBatch() *Batch { return &Batch{c: c} }

func (b *Batch) add(cmd Cmd) Ref {
	b.cmds = append(b.cmds, cmd)
	return Ref(len(b.cmds) - 1)
}

func (b *Batch) ref(r Ref) *int {
	if r < 0 || int(r) >= len(b.cmds) {
		if b.err == nil {
			b.err = fmt.Errorf("vxdp: batch ref %d out of range", r)
		}
	}
	i := int(r)
	return &i
}

// Root adds a root command.
func (b *Batch) Root() Ref { return b.add(Cmd{Op: OpRoot}) }

// At adds a step standing for an already-known node, so later steps can
// navigate from it.
func (b *Batch) At(p nav.ID) Ref {
	h, err := b.c.handle(p)
	if err != nil && b.err == nil {
		b.err = err
	}
	return b.add(Cmd{Op: "node", ID: h})
}

// Down adds a down step from the result of step r.
func (b *Batch) Down(r Ref) Ref { return b.add(Cmd{Op: OpDown, Ref: b.ref(r)}) }

// Right adds a right step from the result of step r.
func (b *Batch) Right(r Ref) Ref { return b.add(Cmd{Op: OpRight, Ref: b.ref(r)}) }

// Fetch adds a fetch step on the result of step r.
func (b *Batch) Fetch(r Ref) Ref { return b.add(Cmd{Op: OpFetch, Ref: b.ref(r)}) }

// SelectLabel adds a select step from the result of step r.
func (b *Batch) SelectLabel(r Ref, label string, fromSelf bool) Ref {
	return b.add(Cmd{Op: OpSelect, Ref: b.ref(r), Label: label, Self: fromSelf})
}

// Result is the client-side outcome of one batch step.
type Result struct {
	// Node is the resulting node for root/down/right/select/node steps
	// (nil = ⊥). Always nil for fetch steps.
	Node nav.ID
	// Label is the fetched label, for fetch steps.
	Label string
	// OK is false when the step resolved to ⊥.
	OK bool
}

// Run sends the whole batch as one frame and returns one Result per
// step, in order.
func (b *Batch) Run() ([]Result, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.cmds) == 0 {
		return nil, nil
	}
	resp, err := b.c.roundTrip(Request{Cmd: Cmd{Op: OpBatch}, Cmds: b.cmds})
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(b.cmds) {
		return nil, fmt.Errorf("vxdp: batch of %d commands got %d results", len(b.cmds), len(resp.Results))
	}
	out := make([]Result, len(resp.Results))
	for i, r := range resp.Results {
		if r.Err != "" {
			return nil, fmt.Errorf("%w: %s", ErrRemote, r.Err)
		}
		out[i] = Result{Label: r.Label, OK: r.OK}
		if r.OK && b.cmds[i].Op != OpFetch {
			out[i].Node = nodeID{c: b.c, h: r.ID}
		}
	}
	return out, nil
}
