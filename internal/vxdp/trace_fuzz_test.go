package vxdp

import (
	"bytes"
	"testing"
	"time"

	"mix/internal/trace"
)

// FuzzTraceWire: the fleet-tracing wire fields — trace_ctx on requests,
// spans and slow on responses — cross node boundaries, so like the L2
// region codec they are a trust boundary inside the fleet. No byte
// stream may panic the codec, and every trace payload that decodes must
// be stable under a re-encode round trip (pooled buffers included).
func FuzzTraceWire(f *testing.F) {
	seed := func(v any) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, v); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	ctx := trace.Context{TraceID: trace.TraceID{Hi: 0xdead, Lo: 0xbeef}, SpanID: 42}
	forest := []*trace.Span{
		{Label: "client", Op: "d", Node: "a", ID: 7, Parent: 42, Dur: time.Millisecond,
			Children: []*trace.Span{
				{Label: "proxy", Op: "d", Start: time.Microsecond},
				{Label: "src:homes", Op: "d", Node: "b"},
			}},
		{Label: "client", Op: "r", Start: 2 * time.Millisecond},
	}
	seed(Request{Cmd: Cmd{Op: OpDown, ID: 3}, TraceCtx: &ctx})
	seed(Request{Cmd: Cmd{Op: OpOpen}, Query: "q", TraceCtx: &ctx})
	seed(Response{NavResult: NavResult{OK: true, ID: 9}, Spans: forest})
	seed(Response{Slow: []SlowNav{
		{Seq: 1, UnixMs: 1700000000000, Node: "a", DurNs: 12345, Root: forest[0]},
	}})
	// Hostile shapes: type confusion on the span array and context field.
	f.Add([]byte{0, 0, 0, 16, '{', '"', 't', 'r', 'a', 'c', 'e', '_', 'c', 't', 'x', '"', ':', '1', '}', ' '})
	f.Add([]byte{0, 0, 0, 12, '{', '"', 's', 'p', 'a', 'n', 's', '"', ':', '1', '}', ' '})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := ReadFrame(bytes.NewReader(data), &req); err == nil && req.TraceCtx != nil {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, Request{Cmd: req.Cmd, TraceCtx: req.TraceCtx}); err == nil {
				var rt Request
				if err := ReadFrame(&buf, &rt); err != nil {
					t.Fatalf("re-decode of re-encoded trace_ctx failed: %v", err)
				}
				if rt.TraceCtx == nil || *rt.TraceCtx != *req.TraceCtx {
					t.Fatalf("trace context not stable under re-encode: %v vs %v",
						rt.TraceCtx, req.TraceCtx)
				}
			}
		}
		var resp Response
		if err := ReadFrame(bytes.NewReader(data), &resp); err == nil && len(resp.Spans) > 0 {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, Response{Spans: resp.Spans}); err == nil {
				var rt Response
				if err := ReadFrame(&buf, &rt); err != nil {
					t.Fatalf("re-decode of re-encoded spans failed: %v", err)
				}
				if !spansEqual(rt.Spans, resp.Spans) {
					t.Fatal("span forest not stable under re-encode")
				}
			}
		}
	})
}

func spansEqual(a, b []*trace.Span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] == nil || b[i] == nil {
			if a[i] != b[i] {
				return false
			}
			continue
		}
		if a[i].Label != b[i].Label || a[i].Op != b[i].Op ||
			a[i].Start != b[i].Start || a[i].Dur != b[i].Dur ||
			a[i].Node != b[i].Node || a[i].ID != b[i].ID ||
			a[i].Parent != b[i].Parent || !spansEqual(a[i].Children, b[i].Children) {
			return false
		}
	}
	return true
}
