// Package workload generates the synthetic datasets and canonical
// plans used by the tests, the examples, and the experiment suite:
//
//   - the paper's running example (Fig. 3/4): homes and schools sources
//     joined on zip code;
//   - the three views of Example 1 (concatenation / selection /
//     reorder) over flat list sources, which exhibit the three
//     browsability classes;
//   - the introduction's allbooks scenario: two bookseller catalogs
//     behind coarse-granularity sources.
//
// Generators are deterministic in their seed, so experiments are
// reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"mix/internal/algebra"
	"mix/internal/pathexpr"
	"mix/internal/xmltree"
)

// HomesSchools generates the two sources of the running example:
//
//	homes[home[addr[…], zip[…]]…]     with nHomes homes
//	schools[school[dir[…], zip[…]]…]  with nSchools schools
//
// Zip codes are drawn from zips distinct values, so the join
// selectivity is controlled by zips. Deterministic in seed.
func HomesSchools(nHomes, nSchools, zips int, seed int64) (homes, schools *xmltree.Tree) {
	r := rand.New(rand.NewSource(seed))
	zip := func() string { return fmt.Sprintf("91%03d", r.Intn(zips)) }
	homes = xmltree.Elem("homes")
	for i := 0; i < nHomes; i++ {
		homes.Children = append(homes.Children, xmltree.Elem("home",
			xmltree.Text("addr", fmt.Sprintf("addr-%d", i)),
			xmltree.Text("zip", zip()),
			xmltree.Text("price", fmt.Sprintf("%d", 100_000+r.Intn(900_000))),
		))
	}
	schools = xmltree.Elem("schools")
	for i := 0; i < nSchools; i++ {
		schools.Children = append(schools.Children, xmltree.Elem("school",
			xmltree.Text("dir", fmt.Sprintf("dir-%d", i)),
			xmltree.Text("zip", zip()),
		))
	}
	return homes, schools
}

// HomesSchoolsPlan builds the Fig. 4 plan over sources named homesSrc
// and schoolsSrc: all homes having a school in the same zip code, each
// wrapped in a med_home element containing the home followed by the
// list of its schools, all under a single answer element.
func HomesSchoolsPlan() algebra.Op {
	homes := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "homesSrc", Var: "root1"},
		Parent: "root1", Path: pathexpr.MustParse("home"), Out: "H",
	}
	homesZip := &algebra.GetDescendants{Input: homes, Parent: "H",
		Path: pathexpr.MustParse("zip._"), Out: "V1"}
	schools := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: "schoolsSrc", Var: "root2"},
		Parent: "root2", Path: pathexpr.MustParse("school"), Out: "S",
	}
	schoolsZip := &algebra.GetDescendants{Input: schools, Parent: "S",
		Path: pathexpr.MustParse("zip._"), Out: "V2"}
	join := &algebra.Join{Left: homesZip, Right: schoolsZip,
		Cond: algebra.Eq(algebra.V("V1"), algebra.V("V2"))}
	grp := &algebra.GroupBy{Input: join, By: []string{"H"}, Var: "S", Out: "LSs"}
	conc := &algebra.Concatenate{Input: grp, X: "H", Y: "LSs", Out: "HLSs"}
	mh := &algebra.CreateElement{Input: conc,
		Label: algebra.LabelSpec{Const: "med_home"}, Children: "HLSs", Out: "MHs"}
	all := &algebra.GroupBy{Input: mh, By: nil, Var: "MHs", Out: "MHL"}
	ans := &algebra.CreateElement{Input: all,
		Label: algebra.LabelSpec{Const: "answer"}, Children: "MHL", Out: "A"}
	return &algebra.TupleDestroy{Input: ans, Var: "A"}
}

// FlatList generates a flat list source r[e…] with n children. Each
// child's label cycles through the given labels and carries its index
// as a single text child, e.g. a[0], b[1], a[2], …
func FlatList(n int, labels ...string) *xmltree.Tree {
	if len(labels) == 0 {
		labels = []string{"item"}
	}
	t := xmltree.Elem("r")
	for i := 0; i < n; i++ {
		t.Children = append(t.Children,
			xmltree.Text(labels[i%len(labels)], fmt.Sprintf("%d", i)))
	}
	return t
}

// ConcPlan builds q_conc of Example 1: decapitate the roots of two
// sources and concatenate their first-level children under a new root.
// Bounded browsable.
func ConcPlan(src1, src2 string) algebra.Op {
	l := &algebra.GroupBy{
		Input: &algebra.GetDescendants{
			Input:  &algebra.Source{URL: src1, Var: "r1"},
			Parent: "r1", Path: pathexpr.MustParse("_"), Out: "X",
		},
		By: nil, Var: "X", Out: "XS",
	}
	r := &algebra.GroupBy{
		Input: &algebra.GetDescendants{
			Input:  &algebra.Source{URL: src2, Var: "r2"},
			Parent: "r2", Path: pathexpr.MustParse("_"), Out: "Y",
		},
		By: nil, Var: "Y", Out: "YS",
	}
	j := &algebra.Join{Left: l, Right: r, Cond: algebra.True{}}
	conc := &algebra.Concatenate{Input: j, X: "XS", Y: "YS", Out: "Z"}
	ans := &algebra.CreateElement{Input: conc,
		Label: algebra.LabelSpec{Const: "result"}, Children: "Z", Out: "A"}
	return &algebra.TupleDestroy{Input: ans, Var: "A"}
}

// SelectionPlan builds q_σ of Example 1: pick the first-level children
// of src whose label is label. (Unbounded) browsable with NC = {d,r,f};
// bounded browsable when NC includes select(σ).
func SelectionPlan(src, label string) algebra.Op {
	gd := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: src, Var: "r"},
		Parent: "r", Path: pathexpr.MustParse("_"), Out: "X",
	}
	sel := &algebra.Select{Input: gd, Cond: &algebra.LabelMatch{Var: "X", Label: label}}
	grp := &algebra.GroupBy{Input: sel, By: nil, Var: "X", Out: "XS"}
	ans := &algebra.CreateElement{Input: grp,
		Label: algebra.LabelSpec{Const: "result"}, Children: "XS", Out: "A"}
	return &algebra.TupleDestroy{Input: ans, Var: "A"}
}

// ReorderPlan builds the unbrowsable view of Example 1: reorder the
// first-level children of src by the text value reachable through
// keyPath (e.g. an age or price attribute).
func ReorderPlan(src, keyPath string) algebra.Op {
	gd := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: src, Var: "r"},
		Parent: "r", Path: pathexpr.MustParse("_"), Out: "X",
	}
	key := &algebra.GetDescendants{Input: gd, Parent: "X",
		Path: pathexpr.MustParse(keyPath), Out: "K"}
	ob := &algebra.OrderBy{Input: key, Keys: []string{"K"}}
	grp := &algebra.GroupBy{Input: ob, By: nil, Var: "X", Out: "XS"}
	ans := &algebra.CreateElement{Input: grp,
		Label: algebra.LabelSpec{Const: "result"}, Children: "XS", Out: "A"}
	return &algebra.TupleDestroy{Input: ans, Var: "A"}
}

// Books generates a bookseller catalog in the shape of the intro's
// amazon/barnesandnoble sources:
//
//	catalog[book[title[…], author[…], subject[…], price[…]]…]
//
// Subjects cycle through a fixed set so subject selections have
// predictable selectivity. Deterministic in seed; the store tag
// distinguishes the two sellers' title spaces.
func Books(store string, n int, seed int64) *xmltree.Tree {
	r := rand.New(rand.NewSource(seed))
	subjects := []string{"databases", "systems", "networks", "theory", "ai"}
	t := xmltree.Elem("catalog")
	for i := 0; i < n; i++ {
		t.Children = append(t.Children, xmltree.Elem("book",
			xmltree.Text("title", fmt.Sprintf("%s-book-%d", store, i)),
			xmltree.Text("author", fmt.Sprintf("author-%d", r.Intn(n/2+1))),
			xmltree.Text("subject", subjects[i%len(subjects)]),
			xmltree.Text("price", fmt.Sprintf("%d.%02d", 10+r.Intn(90), r.Intn(100))),
		))
	}
	return t
}

// AllBooksPlan builds the intro's allbooks integrated view: the union
// of both catalogs' books, restricted to a subject, under one allbooks
// root. src1/src2 name the two bookseller sources.
func AllBooksPlan(src1, src2, subject string) algebra.Op {
	pick := func(src, rootVar string) algebra.Op {
		gd := &algebra.GetDescendants{
			Input:  &algebra.Source{URL: src, Var: rootVar},
			Parent: rootVar, Path: pathexpr.MustParse("book"), Out: "B",
		}
		sub := &algebra.GetDescendants{Input: gd, Parent: "B",
			Path: pathexpr.MustParse("subject._"), Out: "SUBJ"}
		sel := &algebra.Select{Input: sub,
			Cond: algebra.Eq(algebra.V("SUBJ"), algebra.Lit(subject))}
		return &algebra.Project{Input: sel, Keep: []string{"B"}}
	}
	u := &algebra.Union{Left: pick(src1, "r1"), Right: pick(src2, "r2")}
	grp := &algebra.GroupBy{Input: u, By: nil, Var: "B", Out: "BS"}
	ans := &algebra.CreateElement{Input: grp,
		Label: algebra.LabelSpec{Const: "allbooks"}, Children: "BS", Out: "A"}
	return &algebra.TupleDestroy{Input: ans, Var: "A"}
}

// DeepTree generates a tree for the recursive-path experiments: a
// chain of depth nested a elements, each level also carrying fanout
// leaf x elements, with a final x marker at the bottom:
//
//	a[x[0] … a[x[…] … a[x[bottom]]]]
func DeepTree(depth, fanout int) *xmltree.Tree {
	node := xmltree.Elem("a")
	for j := 0; j < fanout; j++ {
		node.Children = append(node.Children, xmltree.Text("x", "bottom"))
	}
	for i := depth - 1; i > 0; i-- {
		parent := xmltree.Elem("a")
		for j := 0; j < fanout; j++ {
			parent.Children = append(parent.Children, xmltree.Text("x", fmt.Sprintf("%d", i)))
		}
		parent.Children = append(parent.Children, node)
		node = parent
	}
	return xmltree.Elem("root", node)
}

// RecursivePlan extracts, via the recursive path a*.x, every x element
// of a DeepTree source — the recursive getDescendants workload of E7.
func RecursivePlan(src string) algebra.Op {
	gd := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: src, Var: "r"},
		Parent: "r", Path: pathexpr.MustParse("a*.x"), Out: "X",
	}
	grp := &algebra.GroupBy{Input: gd, By: nil, Var: "X", Out: "XS"}
	ans := &algebra.CreateElement{Input: grp,
		Label: algebra.LabelSpec{Const: "result"}, Children: "XS", Out: "A"}
	return &algebra.TupleDestroy{Input: ans, Var: "A"}
}

// DetailedHomes generates a homes source whose home elements carry,
// besides their zip leaf, a rich nested listing[…] payload of roughly
// detailNodes nodes (rooms with name/area/features, photo captions).
// The fan-out directly under home stays tiny — a zip._ scan prunes the
// listing immediately — but any operator that *keys* on $H must digest
// the whole payload, which is what makes this the workload of the
// key-allocation experiment (E14). Deterministic in seed.
func DetailedHomes(nHomes, detailNodes, zips int, seed int64) *xmltree.Tree {
	r := rand.New(rand.NewSource(seed))
	homes := xmltree.Elem("homes")
	for i := 0; i < nHomes; i++ {
		listing := xmltree.Elem("listing")
		n := 1
		for room := 0; n < detailNodes; room++ {
			rm := xmltree.Elem("room",
				xmltree.Text("name", fmt.Sprintf("room-%d-%d", i, room)),
				xmltree.Text("area", fmt.Sprintf("%d", 9+r.Intn(40))))
			n += 5
			for f := 0; f < 3 && n < detailNodes; f++ {
				rm.Children = append(rm.Children,
					xmltree.Text("feature", fmt.Sprintf("feature-%d", r.Intn(16))))
				n += 2
			}
			listing.Children = append(listing.Children, rm)
		}
		homes.Children = append(homes.Children, xmltree.Elem("home",
			xmltree.Text("zip", fmt.Sprintf("91%03d", r.Intn(zips))),
			listing,
		))
	}
	return homes
}

// DistinctZipGroupsPlan is the E14 plan over a DetailedHomes source:
// distinct home/zip pairs — whose keys digest the full home payload —
// grouped by zip, with everything but the zip projected away so the
// answer is one slim b[zip[…]] row per distinct zip. Key digestion
// dominates; rendering is negligible.
func DistinctZipGroupsPlan(src string) algebra.Op {
	gd := &algebra.GetDescendants{
		Input:  &algebra.Source{URL: src, Var: "r"},
		Parent: "r", Path: pathexpr.MustParse("home"), Out: "H",
	}
	zip := &algebra.GetDescendants{Input: gd, Parent: "H",
		Path: pathexpr.MustParse("zip._"), Out: "V"}
	d := &algebra.Distinct{
		Input: &algebra.Project{Input: zip, Keep: []string{"H", "V"}}}
	g := &algebra.GroupBy{Input: d, By: []string{"V"}, Var: "H", Out: "G"}
	return &algebra.Project{Input: g, Keep: []string{"V"}}
}
