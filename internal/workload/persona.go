package workload

import (
	"fmt"
	"math/rand"

	"mix/internal/nav"
	"mix/internal/xmltree"
)

// Client personas: scripted region-level navigation behaviors over a
// virtual answer document, used by the prefetch experiments (E19) and
// mixbench -persona. A persona is a Script — an ordered list of region
// visits — generated deterministically from a seed, so two runs (e.g.
// prefetch on vs off) replay byte-identical navigation.
//
// The three personas span the successor-model's operating range:
//
//   - deep-drill reads every region in order and explores it fully —
//     the maximally predictable client speculative prefetch exists for;
//   - glance skims region tops in order, skipping some — sequential but
//     shallow, so predictions should arrive with the shallow depth bit;
//   - select-heavy jumps between regions by label selection — the
//     navigation pattern whose landing position the server cannot
//     track, so the model should mostly stay silent.

// Step is one region visit of a scripted persona.
type Step struct {
	// Region is the 0-based top-level region index to visit.
	Region int
	// Deep explores the region's whole subtree; false fetches the
	// region's top label only (a glance that never descends, so it
	// carries no drill signal).
	Deep bool
	// Select reaches the region by a label-select jump instead of a
	// right-scan over the preceding region tops.
	Select bool
}

// DeepDrillScript is the sequential reader: every region 0..regions-1
// in order, fully explored. The seed is accepted for signature
// uniformity with the other personas; the script is order-determined.
func DeepDrillScript(regions int, seed int64) []Step {
	_ = seed
	out := make([]Step, 0, regions)
	for i := 0; i < regions; i++ {
		out = append(out, Step{Region: i, Deep: true})
	}
	return out
}

// GlanceScript is the skimmer: region tops in order, shallow, with
// roughly a third of the regions skipped (seeded).
func GlanceScript(regions int, seed int64) []Step {
	r := rand.New(rand.NewSource(seed))
	out := make([]Step, 0, regions)
	for i := 0; i < regions; i++ {
		if r.Intn(3) == 0 {
			continue
		}
		out = append(out, Step{Region: i})
	}
	if len(out) == 0 {
		out = append(out, Step{Region: 0})
	}
	return out
}

// SelectHeavyScript is the jumper: regions visits to seeded random
// regions reached by label selection, shallow. Its transitions carry no
// stable delta, so a well-behaved successor model learns nothing
// actionable from it.
func SelectHeavyScript(regions int, seed int64) []Step {
	r := rand.New(rand.NewSource(seed))
	out := make([]Step, 0, regions)
	for i := 0; i < regions; i++ {
		out = append(out, Step{Region: r.Intn(regions), Select: true})
	}
	return out
}

// Selector is the optional label-select jump of a navigable document.
// vxdp.Client implements it; plain nav.Documents need not.
type Selector interface {
	SelectLabel(p nav.ID, label string, fromSelf bool) (nav.ID, error)
}

// ReplayPersona drives a persona script over a document using only the
// primitive navigation set (d, r, f, and select when the document
// offers it), so the same script replays byte-identically against a
// VXDP session and against a local oracle document. After each step it
// calls after (if non-nil) with the step index and the marshaled
// explored part — the subtree for deep steps, the top label otherwise —
// letting the caller interleave measurements or quiescence between
// steps. Replaying a script whose regions exceed the document's
// top-level width is an error.
func ReplayPersona(doc nav.Document, script []Step, after func(step int, explored string) error) error {
	root, err := doc.Root()
	if err != nil {
		return err
	}
	var cur nav.ID
	pos := -1
	for i, st := range script {
		if st.Region < 0 {
			return fmt.Errorf("workload: step %d targets region %d", i, st.Region)
		}
		// Reach the target region top by a d,(r)* scan, restarting from
		// the root when the script moves backwards.
		if cur == nil || st.Region < pos {
			if cur, err = doc.Down(root); err != nil {
				return err
			}
			pos = 0
		}
		for pos < st.Region {
			if cur, err = doc.Right(cur); err != nil {
				return err
			}
			if cur == nil {
				return fmt.Errorf("workload: step %d targets region %d past the last region", i, st.Region)
			}
			pos++
		}
		var explored string
		if st.Deep {
			sub, err := nav.Subtree(doc, cur)
			if err != nil {
				return err
			}
			explored = xmltree.MarshalXML(sub)
		} else {
			label, err := doc.Fetch(cur)
			if err != nil {
				return err
			}
			if st.Select {
				// Land on the same node through the select op so a
				// tracking server sees the jump it cannot position.
				if sel, ok := doc.(Selector); ok {
					p, err := sel.SelectLabel(cur, label, true)
					if err != nil {
						return err
					}
					if p != nil {
						cur = p
					}
				}
			}
			explored = label
		}
		if after != nil {
			if err := after(i, explored); err != nil {
				return err
			}
		}
	}
	return nil
}

// PersonaScript dispatches a persona by name: "deep-drill", "glance",
// or "select-heavy". Unknown names return nil.
func PersonaScript(name string, regions int, seed int64) []Step {
	switch name {
	case "deep-drill":
		return DeepDrillScript(regions, seed)
	case "glance":
		return GlanceScript(regions, seed)
	case "select-heavy":
		return SelectHeavyScript(regions, seed)
	}
	return nil
}
