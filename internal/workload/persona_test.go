package workload

import (
	"reflect"
	"testing"
)

func TestPersonaScriptsDeterministic(t *testing.T) {
	for _, name := range []string{"deep-drill", "glance", "select-heavy"} {
		a := PersonaScript(name, 16, 7)
		b := PersonaScript(name, 16, 7)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different scripts", name)
		}
		if a == nil {
			t.Fatalf("%s: unknown to PersonaScript", name)
		}
	}
	if PersonaScript("no-such-persona", 4, 1) != nil {
		t.Fatal("unknown persona returned a script")
	}
}

func TestDeepDrillCoversAllRegionsInOrder(t *testing.T) {
	s := DeepDrillScript(8, 99)
	if len(s) != 8 {
		t.Fatalf("got %d steps, want 8", len(s))
	}
	for i, st := range s {
		if st.Region != i || !st.Deep || st.Select {
			t.Fatalf("step %d = %+v; want in-order deep non-select", i, st)
		}
	}
}

func TestGlanceShallowOrderedSubset(t *testing.T) {
	s := GlanceScript(30, 3)
	if len(s) == 0 || len(s) >= 30 {
		t.Fatalf("glance over 30 regions gave %d steps; want a proper subset", len(s))
	}
	last := -1
	for _, st := range s {
		if st.Deep || st.Select {
			t.Fatalf("glance step %+v is not a shallow scan", st)
		}
		if st.Region <= last {
			t.Fatalf("glance out of order: %d after %d", st.Region, last)
		}
		last = st.Region
	}
}

func TestSelectHeavyJumps(t *testing.T) {
	s := SelectHeavyScript(12, 5)
	if len(s) != 12 {
		t.Fatalf("got %d steps, want 12", len(s))
	}
	for _, st := range s {
		if !st.Select || st.Deep {
			t.Fatalf("step %+v; want shallow select jumps", st)
		}
		if st.Region < 0 || st.Region >= 12 {
			t.Fatalf("region %d out of range", st.Region)
		}
	}
}
