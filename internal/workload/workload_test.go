package workload

import (
	"testing"

	"mix/internal/algebra"
	"mix/internal/xmltree"
)

func TestHomesSchoolsShape(t *testing.T) {
	homes, schools := HomesSchools(25, 13, 4, 1)
	if homes.Label != "homes" || len(homes.Children) != 25 {
		t.Fatalf("homes = %s/%d", homes.Label, len(homes.Children))
	}
	if schools.Label != "schools" || len(schools.Children) != 13 {
		t.Fatalf("schools = %s/%d", schools.Label, len(schools.Children))
	}
	for _, h := range homes.Children {
		if h.Label != "home" || h.Find("addr") == nil || h.Find("zip") == nil || h.Find("price") == nil {
			t.Fatalf("malformed home: %v", h)
		}
		if len(h.Find("zip").TextContent()) != 5 {
			t.Fatalf("zip format: %v", h.Find("zip"))
		}
	}
	for _, s := range schools.Children {
		if s.Label != "school" || s.Find("dir") == nil || s.Find("zip") == nil {
			t.Fatalf("malformed school: %v", s)
		}
	}
}

func TestHomesSchoolsDeterministic(t *testing.T) {
	h1, s1 := HomesSchools(10, 10, 3, 42)
	h2, s2 := HomesSchools(10, 10, 3, 42)
	if !xmltree.Equal(h1, h2) || !xmltree.Equal(s1, s2) {
		t.Fatal("same seed must reproduce the dataset")
	}
	h3, _ := HomesSchools(10, 10, 3, 43)
	if xmltree.Equal(h1, h3) {
		t.Fatal("different seeds should differ")
	}
}

func TestFlatList(t *testing.T) {
	l := FlatList(6, "a", "b")
	if len(l.Children) != 6 {
		t.Fatalf("len = %d", len(l.Children))
	}
	if l.Children[0].Label != "a" || l.Children[1].Label != "b" || l.Children[2].Label != "a" {
		t.Fatalf("label cycle wrong: %v", l)
	}
	if l.Children[3].TextContent() != "3" {
		t.Fatalf("index content wrong: %v", l.Children[3])
	}
	d := FlatList(2)
	if d.Children[0].Label != "item" {
		t.Fatalf("default label: %v", d)
	}
}

func TestBooks(t *testing.T) {
	b := Books("az", 12, 7)
	if b.Label != "catalog" || len(b.Children) != 12 {
		t.Fatalf("catalog shape: %s/%d", b.Label, len(b.Children))
	}
	subjects := map[string]int{}
	for _, bk := range b.Children {
		if bk.Find("title") == nil || bk.Find("price") == nil || bk.Find("subject") == nil {
			t.Fatalf("malformed book: %v", bk)
		}
		subjects[bk.Find("subject").TextContent()]++
	}
	// Subjects cycle: every subject appears at least twice in 12 books.
	if len(subjects) != 5 {
		t.Fatalf("subjects = %v", subjects)
	}
	if !xmltree.Equal(Books("az", 12, 7), b) {
		t.Fatal("not deterministic")
	}
}

func TestDeepTree(t *testing.T) {
	d := DeepTree(4, 2)
	if d.Label != "root" {
		t.Fatalf("root label %q", d.Label)
	}
	if got := d.CountLabel("a"); got != 4 {
		t.Fatalf("a count = %d, want depth levels", got)
	}
	if got := d.CountLabel("x"); got != 8 {
		t.Fatalf("x count = %d, want depth*fanout", got)
	}
	if d.Depth() != 4+3 { // root + chain of a's + x + leaf
		t.Fatalf("depth = %d", d.Depth())
	}
}

func TestCannedPlansValidate(t *testing.T) {
	plans := []algebra.Op{
		HomesSchoolsPlan(),
		ConcPlan("s1", "s2"),
		SelectionPlan("s", "a"),
		ReorderPlan("s", "age._"),
		AllBooksPlan("a", "b", "databases"),
		RecursivePlan("d"),
	}
	for i, p := range plans {
		if err := algebra.Validate(p); err != nil {
			t.Errorf("plan %d invalid: %v", i, err)
		}
	}
}

func TestCannedPlanClasses(t *testing.T) {
	if cls, _ := algebra.Classify(ConcPlan("a", "b"), false); cls != algebra.BoundedBrowsable {
		t.Errorf("ConcPlan = %v", cls)
	}
	if cls, _ := algebra.Classify(SelectionPlan("s", "a"), false); cls != algebra.Browsable {
		t.Errorf("SelectionPlan = %v", cls)
	}
	if cls, _ := algebra.Classify(SelectionPlan("s", "a"), true); cls != algebra.BoundedBrowsable {
		t.Errorf("SelectionPlan with select = %v", cls)
	}
	if cls, _ := algebra.Classify(ReorderPlan("s", "age._"), false); cls != algebra.Unbrowsable {
		t.Errorf("ReorderPlan = %v", cls)
	}
}
