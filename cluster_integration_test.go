package mix_test

// End-to-end tests of mixd -cluster: a 3-node fleet of in-process
// servers on loopback listeners, each a member of a consistent-hash
// ring over a shared two-tier region cache. The acceptance bar: every
// corpus query answered through every node — over the proxy path and
// the redirect path — is byte-identical to in-process lazy evaluation;
// killing a peer mid-run degrades to local serving without failing
// in-flight sessions; warm cross-node opens fill from the owner's L1
// via the L2 region protocol; and invalidation broadcasts keep any of
// it from ever serving a stale generation. All under -race.

import (
	"bufio"
	"context"
	"log/slog"
	"net"
	"testing"
	"time"

	"mix/internal/cluster"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/vxdp"
	"mix/internal/xmltree"
)

// clusterHarness is a fleet of in-process mixd nodes.
type clusterHarness struct {
	srvs  []*server.Server
	nodes []*cluster.Node
	addrs []string
	done  []chan error
	dead  []bool
}

// startCluster boots n nodes with identical source/view configuration
// (the fleet contract), wired into one ring in the given mode.
func startCluster(t *testing.T, n int, mode cluster.Mode) *clusterHarness {
	t.Helper()
	h := &clusterHarness{
		srvs:  make([]*server.Server, n),
		nodes: make([]*cluster.Node, n),
		addrs: make([]string, n),
		done:  make([]chan error, n),
		dead:  make([]bool, n),
	}
	// Listen first so every node knows the full membership up front —
	// the static -peers model.
	ls := make([]net.Listener, n)
	for i := range ls {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ls[i] = l
		h.addrs[i] = l.Addr().String()
	}
	for i := 0; i < n; i++ {
		rc := regioncache.New(0)
		var peers []string
		for j, a := range h.addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		node, err := cluster.New(cluster.Config{
			Self:           h.addrs[i],
			Peers:          peers,
			Mode:           mode,
			HealthInterval: 200 * time.Millisecond,
			FlushInterval:  100 * time.Millisecond,
			DialTimeout:    2 * time.Second,
			CallTimeout:    5 * time.Second,
			FailAfter:      2,
			Logger:         slog.New(slog.DiscardHandler),
		}, rc)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.New(mixdFactory(),
			server.WithRegionCache(rc), server.WithCluster(node))
		if err != nil {
			t.Fatal(err)
		}
		h.srvs[i], h.nodes[i] = srv, node
		h.done[i] = make(chan error, 1)
		done := h.done[i]
		go func(l net.Listener) { done <- srv.Serve(l) }(ls[i])
		node.Start()
	}
	t.Cleanup(func() {
		for i := range h.srvs {
			if !h.dead[i] {
				h.kill(t, i)
			}
		}
	})
	return h
}

// kill shuts one node down hard: stop its cluster loops, drain its
// server. From the peers' point of view the member just died.
func (h *clusterHarness) kill(t *testing.T, i int) {
	t.Helper()
	if h.dead[i] {
		return
	}
	h.dead[i] = true
	h.nodes[i].Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = h.srvs[i].Shutdown(ctx)
	select {
	case err := <-h.done[i]:
		if err != nil {
			t.Errorf("node %d Serve: %v", i, err)
		}
	case <-time.After(10 * time.Second):
		t.Errorf("node %d did not stop", i)
	}
}

// ownerIndex resolves which node owns a query's routing key, using a
// throwaway local engine to compile the (view name, fingerprint) key.
func (h *clusterHarness) ownerIndex(t *testing.T, query string) int {
	t.Helper()
	med, err := mixdFactory()(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := med.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	name, fp := res.CacheKey()
	owner := h.nodes[0].Owner(name, fp)
	for i, a := range h.addrs {
		if a == owner {
			return i
		}
	}
	t.Fatalf("owner %q is not a fleet member", owner)
	return -1
}

// wantAnswer materializes a query in-process: the byte-identity oracle.
func wantAnswer(t *testing.T, query string) string {
	t.Helper()
	med, err := mixdFactory()(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := med.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return xmltree.MarshalXML(tree)
}

func materializeVia(t *testing.T, addr, query string) string {
	t.Helper()
	c, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(query); err != nil {
		t.Fatal(err)
	}
	tree, err := nav.Materialize(c)
	if err != nil {
		t.Fatal(err)
	}
	return xmltree.MarshalXML(tree)
}

// TestClusterProxyByteIdentical: every corpus query, opened through
// every node of a 3-node proxy-mode fleet, materializes byte-identical
// to in-process evaluation — and at least some of those sessions were
// actually proxied (the corpus keys cannot all live on one node's
// client).
func TestClusterProxyByteIdentical(t *testing.T) {
	h := startCluster(t, 3, cluster.ModeProxy)
	for _, tc := range queryCorpus {
		want := wantAnswer(t, tc.q)
		for i, addr := range h.addrs {
			if got := materializeVia(t, addr, tc.q); got != want {
				t.Fatalf("%s via node %d ≠ in-process\ngot:  %s\nwant: %s", tc.name, i, got, want)
			}
		}
	}
	var proxied, owned int64
	for _, n := range h.nodes {
		st := n.Stats()
		proxied += st.Proxied
		owned += st.OwnedLocal
	}
	if proxied == 0 {
		t.Fatal("no commands were proxied across 15 node×query sessions")
	}
	if owned == 0 {
		t.Fatal("no opens were owner-local")
	}
}

// TestClusterRedirectByteIdentical: same corpus sweep in redirect mode;
// vxdp.Client follows the redirect by redialing the owner, after which
// every navigation is a single hop.
func TestClusterRedirectByteIdentical(t *testing.T) {
	h := startCluster(t, 3, cluster.ModeRedirect)
	for _, tc := range queryCorpus {
		want := wantAnswer(t, tc.q)
		for i, addr := range h.addrs {
			if got := materializeVia(t, addr, tc.q); got != want {
				t.Fatalf("%s via node %d ≠ in-process\ngot:  %s\nwant: %s", tc.name, i, got, want)
			}
		}
	}
	var redirected int64
	for _, n := range h.nodes {
		redirected += n.Stats().Redirected
	}
	if redirected == 0 {
		t.Fatal("no opens were redirected")
	}
}

// TestClusterPeerDeathDegrades kills fleet members mid-run and checks
// both halves of the degradation contract: a session proxied through a
// surviving node to a surviving owner is untouched by an unrelated
// peer's death, and when the *owner* dies mid-session, the session
// survives — the in-flight command errs with a reopen notice, and
// navigation restarted from the root completes byte-identically from
// the local node's own sources.
func TestClusterPeerDeathDegrades(t *testing.T) {
	h := startCluster(t, 3, cluster.ModeProxy)
	q := queryCorpus[1].q // the view query
	want := wantAnswer(t, q)
	owner := h.ownerIndex(t, q)
	entry := (owner + 1) % 3  // a non-owner node the client connects to
	victim := (owner + 2) % 3 // the third node: unrelated to this session

	c, err := vxdp.Dial(h.addrs[entry])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(q); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Root(); err != nil {
		t.Fatal(err)
	}

	// Killing a non-owner, non-entry peer must not disturb the session.
	h.kill(t, victim)
	if got, err := nav.Materialize(c); err != nil {
		t.Fatalf("session died with an unrelated peer: %v", err)
	} else if xmltree.MarshalXML(got) != want {
		t.Fatal("answer changed after unrelated peer death")
	}

	// A fresh open for a key the dead node owned must be served
	// (degraded) by whatever node the client reaches.
	for _, tc := range queryCorpus {
		if h.ownerIndex(t, tc.q) == victim {
			if got := materializeVia(t, h.addrs[entry], tc.q); got != wantAnswer(t, tc.q) {
				t.Fatalf("%s owned by dead node served wrong answer", tc.name)
			}
		}
	}

	// Now kill the owner out from under the proxied session. The next
	// command errs (owner handles are gone) but the session survives:
	// restarting from the root completes locally, byte-identical.
	h.kill(t, owner)
	if _, err := c.Root(); err == nil {
		t.Fatal("command after owner death succeeded; want a reopen notice")
	}
	got, err := nav.Materialize(c)
	if err != nil {
		t.Fatalf("session did not survive owner death: %v", err)
	}
	if xmltree.MarshalXML(got) != want {
		t.Fatal("degraded local answer differs from in-process evaluation")
	}
	if st := h.nodes[entry].Stats(); st.Degraded == 0 {
		t.Fatalf("owner death not counted degraded: %+v", st)
	}
}

// TestClusterL2RegionSharing exercises the two-tier cache on its own
// (local routing mode, so no proxying can mask it): a cold session on
// one non-owner explores the view, the flusher publishes the explored
// region to the owner, and a warm session on the *other* non-owner
// fills its L1 from the owner via region_get before touching sources.
func TestClusterL2RegionSharing(t *testing.T) {
	h := startCluster(t, 3, cluster.ModeLocal)
	q := queryCorpus[1].q
	want := wantAnswer(t, q)
	owner := h.ownerIndex(t, q)
	cold := (owner + 1) % 3
	warm := (owner + 2) % 3

	if got := materializeVia(t, h.addrs[cold], q); got != want {
		t.Fatal("cold answer differs")
	}
	// Publish the cold node's explored region to the owner now (the
	// background flusher would too; this removes the timing dependence).
	h.nodes[cold].Flush()
	if st := h.nodes[owner].Stats(); st.L2Fills == 0 {
		t.Fatalf("owner merged no region_put after cold exploration + flush: %+v", st)
	}

	before := h.nodes[warm].Stats().L2Hits
	if got := materializeVia(t, h.addrs[warm], q); got != want {
		t.Fatal("warm answer differs")
	}
	if hits := h.nodes[warm].Stats().L2Hits - before; hits == 0 {
		t.Fatalf("warm open on node %d hit no L2 regions: %+v", warm, h.nodes[warm].Stats())
	}
	if st := h.nodes[owner].Stats(); st.L2Serves == 0 {
		t.Fatalf("owner served no region_get: %+v", st)
	}
}

// TestClusterInvalidationNeverServesStale: after a registry bump on one
// node, the broadcast raises every member to the new generation, and a
// warm open keyed to the new epoch must NOT fill from regions explored
// under the old one — the generation travels inside the region key, so
// the owner misses instead of serving stale data.
func TestClusterInvalidationNeverServesStale(t *testing.T) {
	h := startCluster(t, 3, cluster.ModeLocal)
	q := queryCorpus[1].q
	want := wantAnswer(t, q)
	owner := h.ownerIndex(t, q)
	cold := (owner + 1) % 3
	warm := (owner + 2) % 3

	if got := materializeVia(t, h.addrs[cold], q); got != want {
		t.Fatal("cold answer differs")
	}
	h.nodes[cold].Flush() // old-generation regions now sit at the owner

	h.srvs[cold].BumpRegistry() // sources changed; broadcast the new epoch
	deadline := time.Now().Add(5 * time.Second)
	for {
		allAt := true
		for i, srv := range h.srvs {
			st := srv.Stats()
			if st.Cache == nil || st.Cache.Generation < 1 {
				allAt = false
				if time.Now().After(deadline) {
					t.Fatalf("node %d never reached generation 1: %+v", i, st.Cache)
				}
			}
		}
		if allAt {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	before := h.nodes[warm].Stats().L2Hits
	if got := materializeVia(t, h.addrs[warm], q); got != want {
		t.Fatal("post-invalidation answer differs")
	}
	if hits := h.nodes[warm].Stats().L2Hits - before; hits != 0 {
		t.Fatalf("open under generation 1 filled from %d old-generation regions", hits)
	}

	// Belt and braces: ask the owner for the old-generation key
	// directly; it must miss — dropBelow swept it.
	pc, err := vxdp.Dial(h.addrs[owner])
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	med, err := mixdFactory()(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := med.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	name, fp := res.CacheKey()
	reg, err := pc.RegionGet(vxdp.RegionKey{Gen: 0, Registry: 3, Name: name, Fingerprint: fp})
	if err != nil {
		t.Fatal(err)
	}
	if reg != nil && !reg.Empty() {
		t.Fatalf("owner served a generation-0 region after invalidating to 1: %d nodes", reg.Nodes())
	}
}

// TestAbruptDisconnectFoldsCounters is the regression test for the
// drop-path ordering in dropSession: a client that vanishes without a
// close frame must still have its per-session navigation counters
// folded into the server totals — fold first, then log, then teardown.
func TestAbruptDisconnectFoldsCounters(t *testing.T) {
	srv, addr := startMixd(t)
	base := srv.Stats().Root

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(conn)
	r := bufio.NewReader(conn)
	send := func(req vxdp.Request) vxdp.Response {
		t.Helper()
		if err := vxdp.WriteFrame(w, req); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		var resp vxdp.Response
		if err := vxdp.ReadFrame(r, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Err != "" {
			t.Fatalf("remote: %s", resp.Err)
		}
		return resp
	}
	send(vxdp.Request{Cmd: vxdp.Cmd{Op: vxdp.OpOpen}, Query: queryCorpus[0].q})
	const roots = 5
	for i := 0; i < roots; i++ {
		send(vxdp.Request{Cmd: vxdp.Cmd{Op: vxdp.OpRoot}})
	}
	conn.Close() // abrupt: no close frame

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().SessionsActive != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never dropped after abrupt disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The session is gone from the live set, so these roots can only be
	// visible if dropSession folded them into the finished-session base.
	if got := srv.Stats().Root - base; got < roots {
		t.Fatalf("after abrupt disconnect, folded root count = %d, want ≥ %d", got, roots)
	}
}
