package mix_test

// End-to-end tests of the networked mediator: an in-process mixd
// (internal/server) on a loopback listener, navigated by vxdp.Clients.
// The acceptance bar of the subsystem: remote exploration is
// byte-identical to in-process lazy evaluation on the query corpus,
// batched navigation cuts the round-trip message count on the same
// exploration, and idle sessions are evicted — all under -race.

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mix/internal/mediator"
	"mix/internal/nav"
	"mix/internal/regioncache"
	"mix/internal/server"
	"mix/internal/vxdp"
	"mix/internal/workload"
	"mix/internal/xmltree"
)

// The homes⋈schools view of the running example, defined server-side;
// clients query the view like a source.
const homesSchoolsViewDef = `
CONSTRUCT <allhomes> <med_home> $H $S {$S} </med_home> {$H} </allhomes> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2`

// queryCorpus is the exploration corpus: the E2-style homes⋈schools
// join (direct and through the view) and E1-style selection /
// concatenation / reorder shapes over the same sources.
var queryCorpus = []struct{ name, q string }{
	{"join", `
CONSTRUCT <answer> <med_home> $H $S {$S} </med_home> {$H} </answer> {}
WHERE homesSrc homes.home $H AND $H zip._ $V1
AND schoolsSrc schools.school $S AND $S zip._ $V2 AND $V1 = $V2`},
	{"view", `
CONSTRUCT <out> $M {$M} </out> {}
WHERE homeview allhomes.med_home $M`},
	{"selection", `
CONSTRUCT <zips> $Z {$Z} </zips> {}
WHERE homesSrc homes.home $H AND $H zip._ $Z`},
	{"filter", `
CONSTRUCT <cheap> $H {$H} </cheap> {}
WHERE homesSrc homes.home $H AND $H zip._ $Z
AND schoolsSrc schools.school $S AND $S zip._ $W
AND $Z = $W AND $Z = "91000"`},
	{"reorder", `
CONSTRUCT <sorted> $H {$H} </sorted> {}
WHERE homesSrc homes.home $H AND $H price._ $P
ORDERBY $P`},
}

func mixdFactory() server.Factory {
	homes, schools := workload.HomesSchools(25, 25, 6, 13)
	return func(rc *regioncache.Cache) (*mediator.Mediator, error) {
		m := mediator.New(mediator.DefaultOptions())
		m.SetRegionCache(rc)
		m.RegisterTree("homesSrc", homes)
		m.RegisterTree("schoolsSrc", schools)
		if err := m.DefineView("homeview", homesSchoolsViewDef); err != nil {
			return nil, err
		}
		return m, nil
	}
}

// startMixd runs the daemon in-process on a loopback listener.
func startMixd(t *testing.T, opts ...server.Option) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(mixdFactory(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("mixd Serve: %v", err)
		}
	})
	return srv, l.Addr().String()
}

// TestRemoteCorpusByteIdentical: for every corpus query, full remote
// exploration is byte-identical to in-process lazy evaluation.
func TestRemoteCorpusByteIdentical(t *testing.T) {
	_, addr := startMixd(t)
	factory := mixdFactory()
	for _, tc := range queryCorpus {
		t.Run(tc.name, func(t *testing.T) {
			local, err := factory(nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := local.Query(tc.q)
			if err != nil {
				t.Fatal(err)
			}
			wantTree, err := res.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			want := xmltree.MarshalXML(wantTree)

			c, err := vxdp.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.Open(tc.q); err != nil {
				t.Fatal(err)
			}
			gotTree, err := nav.Materialize(c)
			if err != nil {
				t.Fatal(err)
			}
			if got := xmltree.MarshalXML(gotTree); got != want {
				t.Fatalf("remote ≠ in-process\nremote: %s\nlocal:  %s", got, want)
			}
		})
	}
}

// TestMixdTwentyConcurrentSessions is the acceptance stress test: ≥20
// concurrent client sessions navigate the homes⋈schools view — some
// materializing everything, some exploring a prefix, some scanning
// labels in a batch — and every fully explored answer is byte-identical
// to in-process lazy evaluation.
func TestMixdTwentyConcurrentSessions(t *testing.T) {
	srv, addr := startMixd(t, server.WithMaxSessions(64))

	local, err := mixdFactory()(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := local.Query(queryCorpus[1].q) // over the view
	if err != nil {
		t.Fatal(err)
	}
	wantTree, err := res.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	want := xmltree.MarshalXML(wantTree)
	wantFirst := len(wantTree.Children)

	const sessions = 24
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fail := func(err error) { errs <- fmt.Errorf("session %d: %w", i, err) }
			c, err := vxdp.Dial(addr)
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			if err := c.Open(queryCorpus[1].q); err != nil {
				fail(err)
				return
			}
			switch i % 3 {
			case 0: // full exploration — byte-identical
				got, err := nav.Materialize(c)
				if err != nil {
					fail(err)
					return
				}
				if xmltree.MarshalXML(got) != want {
					fail(fmt.Errorf("remote answer differs"))
				}
			case 1: // partial exploration — prefix of the answer
				k := 1 + i%4
				got, err := nav.ExploreFirst(c, k)
				if err != nil {
					fail(err)
					return
				}
				n := len(got.Children)
				if n > 0 && got.Children[n-1].IsHole() {
					n--
				}
				for j := 0; j < n; j++ {
					if !xmltree.Equal(got.Children[j], wantTree.Children[j]) {
						fail(fmt.Errorf("child %d differs under partial exploration", j))
						return
					}
				}
			case 2: // batched label scan — one round trip
				b := c.NewBatch()
				ch := b.Down(b.Root())
				var fetches []vxdp.Ref
				for j := 0; j < wantFirst; j++ {
					fetches = append(fetches, b.Fetch(ch))
					ch = b.Right(ch)
				}
				results, err := b.Run()
				if err != nil {
					fail(err)
					return
				}
				for j, f := range fetches {
					if !results[f].OK || results[f].Label != wantTree.Children[j].Label {
						fail(fmt.Errorf("batched label %d = %+v, want %q", j, results[f], wantTree.Children[j].Label))
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.SessionsTotal < sessions {
		t.Fatalf("sessions total = %d, want ≥ %d", st.SessionsTotal, sessions)
	}
	if st.Navs == 0 {
		t.Fatal("no navigations counted")
	}
}

// TestBatchedNavigationReducesMessages runs the same exploration — a
// d,(f,r)* scan of the first k answer children (Example 1's client
// pattern) — once as one command per message and once pipelined, and
// asserts the batched version takes strictly fewer round trips while
// returning the same labels.
func TestBatchedNavigationReducesMessages(t *testing.T) {
	_, addr := startMixd(t)
	const k = 10

	c1, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Open(queryCorpus[0].q); err != nil {
		t.Fatal(err)
	}
	base := c1.RoundTrips()
	singles, err := nav.Labels(c1, k) // root, down, then fetch/right per child
	if err != nil {
		t.Fatal(err)
	}
	singleTrips := c1.RoundTrips() - base

	c2, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Open(queryCorpus[0].q); err != nil {
		t.Fatal(err)
	}
	base = c2.RoundTrips()
	b := c2.NewBatch()
	ch := b.Down(b.Root())
	var fetches []vxdp.Ref
	for i := 0; i < k; i++ {
		fetches = append(fetches, b.Fetch(ch))
		ch = b.Right(ch)
	}
	results, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	batchTrips := c2.RoundTrips() - base

	var batched []string
	for _, f := range fetches {
		if results[f].OK {
			batched = append(batched, results[f].Label)
		}
	}
	if len(batched) != len(singles) {
		t.Fatalf("batched scan saw %d labels, singles %d", len(batched), len(singles))
	}
	for i := range singles {
		if batched[i] != singles[i] {
			t.Fatalf("label %d: batched %q ≠ single %q", i, batched[i], singles[i])
		}
	}
	if batchTrips != 1 {
		t.Fatalf("batched exploration took %d round trips, want 1", batchTrips)
	}
	if singleTrips <= batchTrips {
		t.Fatalf("one-command-per-message took %d trips, batched %d — no reduction", singleTrips, batchTrips)
	}
}

// TestMixdIdleEviction: a session that stops navigating is evicted
// after the configured idle timeout while an active one survives.
func TestMixdIdleEviction(t *testing.T) {
	srv, addr := startMixd(t, server.WithIdleTimeout(100*time.Millisecond))

	idle, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	if err := idle.Open(queryCorpus[0].q); err != nil {
		t.Fatal(err)
	}
	busy, err := vxdp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	if err := busy.Open(queryCorpus[0].q); err != nil {
		t.Fatal(err)
	}

	// Keep one session busy well past the idle window; the other one
	// goes quiet and must be evicted.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := busy.Root(); err != nil {
			t.Fatalf("busy session died: %v", err)
		}
		st := srv.Stats()
		if st.SessionsEvicted >= 1 && st.SessionsActive == 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	st := srv.Stats()
	if st.SessionsEvicted == 0 || st.SessionsActive != 1 {
		t.Fatalf("idle session not evicted: %+v", st)
	}
	if _, err := idle.Root(); err == nil {
		t.Fatal("evicted session still answering")
	}
}
