// Package mix is a from-scratch Go reproduction of the MIX mediator
// system and its navigation-driven evaluation of virtual mediated XML
// views (Ludäscher, Papakonstantinou, Velikhov; EDBT 2000).
//
// See README.md for the architecture overview, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for the
// measured reproduction of every claim. The benchmark harness in
// bench_test.go regenerates one benchmark per experiment; the full
// tables come from cmd/mixbench.
package mix
